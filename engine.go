package opaq

import (
	"cmp"
	"net/http"

	"opaq/internal/engine"
)

// Engine is a concurrent, long-lived quantile service: P lock-striped
// ingest shards absorb a stream while queries are served from an
// epoch-cached merged snapshot (one single-flight merge per ingest
// advance, however many queries arrive). Summaries move through an
// epoch-based lifecycle — completed runs seal into immutable epochs
// (EngineEpochPolicy) and a retention policy (EngineRetention) evicts aged
// epochs — so the engine serves windowed as well as lifetime statistics.
// It checkpoints and restores its state through the SaveSummary format and
// can be seeded from run files via a sharded bulk load. See
// internal/engine for the architecture.
type Engine[T cmp.Ordered] = engine.Engine[T]

// EngineOptions configures NewEngine; see engine.Options.
type EngineOptions = engine.Options

// EngineEpochPolicy controls when an engine seals its live stripes into an
// epoch (by element count, encoded bytes or wall-clock tick); see
// engine.EpochPolicy. Engines with a tick interval must be Closed.
type EngineEpochPolicy = engine.EpochPolicy

// EngineRetention controls how sealed epochs age out of the merge set;
// see engine.Retention.
type EngineRetention = engine.Retention

// EngineCompactionPolicy controls binary-buddy compaction of the sealed
// epoch ring: adjacent same-tier epochs merge after rotations and on
// snapshot rebuilds, holding the ring at O(log N) entries with every
// answer — and the checkpoint bytes — provably unchanged; see
// engine.CompactionPolicy.
type EngineCompactionPolicy = engine.CompactionPolicy

// ErrEngineBacklogged reports an ingest rejected by engine-side bounded
// admission (EngineOptions.MaxPending); back off — Engine.SealInterval
// hints how long — and retry after a rotation seals the backlog.
var ErrEngineBacklogged = engine.ErrBacklogged

// RetentionKind selects an eviction policy; see engine.RetentionKind.
type RetentionKind = engine.RetentionKind

// Retention policies: keep every epoch (lifetime statistics), the newest
// K epochs, or a trailing wall-clock window.
const (
	RetainAll    = engine.RetainAll
	RetainLastK  = engine.RetainLastK
	RetainMaxAge = engine.RetainMaxAge
)

// EngineEpochStats describes one retained epoch; see engine.EpochStats.
type EngineEpochStats = engine.EpochStats

// EngineStats is a point-in-time engine activity report; see engine.Stats.
type EngineStats = engine.Stats

// EngineSnapshot is an immutable consistent view of an engine: the merged
// summary plus its derived equi-depth histogram; see engine.Snapshot.
type EngineSnapshot[T cmp.Ordered] = engine.Snapshot[T]

// NewEngine returns a live quantile service over elements of type T.
func NewEngine[T cmp.Ordered](opts EngineOptions) (*Engine[T], error) {
	return engine.New[T](opts)
}

// EngineRegistry maps tenant names (columns, tables, metrics) to
// independently configured engines behind one server, with per-tenant
// checkpoint files and restore-on-boot; see engine.Registry.
type EngineRegistry[T cmp.Ordered] = engine.Registry[T]

// EngineRegistryOptions configures NewEngineRegistry; see
// engine.RegistryOptions.
type EngineRegistryOptions[T cmp.Ordered] = engine.RegistryOptions[T]

// DefaultTenant is the tenant the registry handler's root routes address.
const DefaultTenant = engine.DefaultTenant

// NewEngineRegistry returns a multi-tenant engine registry, restoring any
// per-tenant checkpoints found in its checkpoint directory.
func NewEngineRegistry[T cmp.Ordered](opts EngineRegistryOptions[T]) (*EngineRegistry[T], error) {
	return engine.NewRegistry[T](opts)
}

// EngineHandlerOptions tunes the HTTP layer's protection limits (ingest
// body cap, pending-bytes backpressure); see engine.HandlerOptions.
type EngineHandlerOptions = engine.HandlerOptions

// NewEngineHandler exposes an engine over the HTTP/JSON API that
// `opaq serve` speaks (POST /ingest, GET /quantile, GET /quantiles,
// GET /selectivity, GET /stats, GET /healthz). parse converts request keys
// from their decimal string form; ParseInt64Key and ParseFloat64Key cover
// the common element types.
func NewEngineHandler[T cmp.Ordered](e *Engine[T], parse func(string) (T, error)) http.Handler {
	return engine.NewHandler(e, parse)
}

// NewEngineRegistryHandler exposes a registry over the multi-tenant
// HTTP/JSON API: every tenant under /t/{tenant}/..., tenant admin under
// /admin/tenants, GET /healthz, and the root routes aliased to the
// "default" tenant so single-engine clients keep working.
func NewEngineRegistryHandler[T cmp.Ordered](r *EngineRegistry[T], parse func(string) (T, error), opts EngineHandlerOptions) http.Handler {
	return engine.NewRegistryHandler(r, parse, opts)
}

// NewEngineHandlerCodec is NewEngineHandler with explicit protection
// limits and a codec enabling the binary ingest path: POST /ingest with
// Content-Type application/octet-stream carries length-prefixed,
// CRC-checked element frames (the checkpoint encoding on the wire)
// instead of JSON. Registry handlers enable it automatically from their
// checkpoint codec.
func NewEngineHandlerCodec[T cmp.Ordered](e *Engine[T], parse func(string) (T, error), codec Codec[T], opts EngineHandlerOptions) http.Handler {
	return engine.NewHandlerCodec(e, parse, codec, opts)
}

// EngineTCPOptions tunes a binary TCP ingest server (frame size bound,
// pending-bytes backpressure, Retry-After hint); see engine.TCPOptions.
type EngineTCPOptions = engine.TCPOptions

// EngineTCPServer serves the persistent-connection binary ingest
// protocol: clients stream CRC-checked element frames and receive one
// ack or nack per batch; see engine.TCPServer. The opaqclient package is
// the matching client.
type EngineTCPServer[T cmp.Ordered] = engine.TCPServer[T]

// NewEngineTCPServer returns a TCP ingest server feeding one engine.
func NewEngineTCPServer[T cmp.Ordered](e *Engine[T], codec Codec[T], opts EngineTCPOptions) *EngineTCPServer[T] {
	return engine.NewTCPServer(e, codec, opts)
}

// NewEngineRegistryTCPServer returns a TCP ingest server routing frames
// to registry tenants by the frame's tenant field.
func NewEngineRegistryTCPServer[T cmp.Ordered](r *EngineRegistry[T], codec Codec[T], opts EngineTCPOptions) *EngineTCPServer[T] {
	return engine.NewRegistryTCPServer(r, codec, opts)
}

// ParseInt64Key parses a decimal int64 HTTP request key.
func ParseInt64Key(s string) (int64, error) { return engine.Int64Key(s) }

// ParseFloat64Key parses a decimal float64 HTTP request key.
func ParseFloat64Key(s string) (float64, error) { return engine.Float64Key(s) }
