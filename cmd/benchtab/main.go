// Command benchtab regenerates the tables and figures of the paper's
// evaluation (Alsabti, Ranka, Singh: "A One-Pass Algorithm for Accurately
// Estimating Quantiles for Disk-Resident Data", VLDB 1997).
//
// Usage:
//
//	benchtab -exp table3            # one experiment
//	benchtab -exp all -scale 1      # everything at paper scale
//	benchtab -list
//
// -scale divides the paper's dataset sizes: -scale 1 is paper scale
// (1M–32M keys; minutes of CPU), -scale 10 runs in seconds. Accuracy
// metrics (RER_A/L/N) are scale-free — their ceilings depend only on the
// sample size s — so scaled runs reproduce the paper's numbers; the
// simulated-time experiments report model time at any scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"opaq/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table3..table12, figure3..figure6, or all)")
	scale := flag.Int("scale", 10, "divide the paper's dataset sizes by this factor (1 = paper scale)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	registry := experiments.All()
	if *list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	var names []string
	if *exp == "all" {
		names = experiments.Order
	} else {
		if registry[*exp] == nil {
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}

	fmt.Printf("OPAQ reproduction — scale 1/%d of paper dataset sizes\n\n", *scale)
	for _, name := range names {
		start := time.Now()
		tbl, err := registry[name](*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := tbl.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
