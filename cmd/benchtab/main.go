// Command benchtab regenerates the tables and figures of the paper's
// evaluation (Alsabti, Ranka, Singh: "A One-Pass Algorithm for Accurately
// Estimating Quantiles for Disk-Resident Data", VLDB 1997).
//
// Usage:
//
//	benchtab -exp table3            # one experiment
//	benchtab -exp compact,ingest    # a comma-separated set
//	benchtab -exp all -scale 1      # everything at paper scale
//	benchtab -list
//
// -scale divides the paper's dataset sizes: -scale 1 is paper scale
// (1M–32M keys; minutes of CPU), -scale 10 runs in seconds. Accuracy
// metrics (RER_A/L/N) are scale-free — their ceilings depend only on the
// sample size s — so scaled runs reproduce the paper's numbers; the
// simulated-time experiments report model time at any scale.
//
// The perf trajectory: -json writes every experiment's machine-readable
// metrics (with the current commit) to a file, and -baseline compares
// gated metrics against such a file from an earlier commit, failing when
// any regresses by more than -regress percent. CI checks BENCH_6.json in
// at the repo root and gates pull requests on it:
//
//	benchtab -exp ingest -json BENCH_6.json               # refresh baseline
//	benchtab -exp ingest -baseline BENCH_6.json -regress 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"opaq/internal/experiments"
)

// benchFile is the on-disk shape of -json output and -baseline input.
type benchFile struct {
	Commit  string               `json:"commit"`
	Scale   int                  `json:"scale"`
	Metrics []experiments.Metric `json:"metrics"`
}

func main() {
	exp := flag.String("exp", "all", "experiment(s) to run, comma-separated (use -list for names, or all)")
	scale := flag.Int("scale", 10, "divide the paper's dataset sizes by this factor (1 = paper scale)")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonOut := flag.String("json", "", "write the run's metrics (with commit) to this JSON file")
	baseline := flag.String("baseline", "", "compare gated metrics against this JSON file's")
	regress := flag.Float64("regress", 20, "with -baseline: fail when a gated metric regresses by more than this percent")
	flag.Parse()

	registry := experiments.All()
	if *list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	var names []string
	if *exp == "all" {
		names = experiments.Order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if registry[name] == nil {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	fmt.Printf("OPAQ reproduction — scale 1/%d of paper dataset sizes\n\n", *scale)
	var metrics []experiments.Metric
	for _, name := range names {
		start := time.Now()
		tbl, err := registry[name](*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := tbl.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		metrics = append(metrics, tbl.Metrics...)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		out := benchFile{Commit: headCommit(), Scale: *scale, Metrics: metrics}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(metrics), *jsonOut)
	}

	if *baseline != "" {
		if failed := checkBaseline(*baseline, metrics, *regress); failed {
			os.Exit(1)
		}
	}
}

// checkBaseline compares this run's gated metrics against the baseline
// file's, reporting every comparison and returning true when any metric
// regressed past the threshold. Metrics present on only one side are
// reported but never fail — renames and new experiments should not break
// the gate.
func checkBaseline(path string, current []experiments.Metric, pct float64) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: baseline: %v\n", err)
		return true
	}
	var base benchFile
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: baseline %s: %v\n", path, err)
		return true
	}
	baseByName := make(map[string]experiments.Metric, len(base.Metrics))
	for _, m := range base.Metrics {
		baseByName[m.Name] = m
	}

	fmt.Printf("regression gate: vs %s (commit %s), threshold %.0f%%\n", path, base.Commit, pct)
	failed := false
	for _, cur := range current {
		if !cur.Gate {
			continue
		}
		ref, ok := baseByName[cur.Name]
		if !ok {
			fmt.Printf("  NEW   %-40s %12.4g %s (no baseline)\n", cur.Name, cur.Value, cur.Unit)
			continue
		}
		// delta > 0 always means "worse", whichever direction is better.
		var delta float64
		if cur.Better == "lower" {
			delta = (cur.Value - ref.Value) / ref.Value * 100
		} else {
			delta = (ref.Value - cur.Value) / ref.Value * 100
		}
		verdict := "ok"
		if delta > pct {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %-5s %-40s %12.4g -> %12.4g %s (%+.1f%% worse)\n",
			verdict, cur.Name, ref.Value, cur.Value, cur.Unit, delta)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchtab: gated metrics regressed more than %.0f%% vs %s\n", pct, path)
	}
	return failed
}

// headCommit stamps the metrics file with the commit it measured.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
