package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// freePort reserves then releases an ephemeral port. The tiny window in
// which another process could grab it is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCmdServeEndToEnd drives the full serving story: bulk-load a run
// file, ingest over HTTP, query quantiles and stats, then shut down
// gracefully via SIGTERM and verify the final checkpoint restores.
func TestCmdServeEndToEnd(t *testing.T) {
	seed := genFile(t, "uniform", 20_000)
	ckpt := filepath.Join(t.TempDir(), "state.sum")
	addr := freePort(t)

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-m", "2000", "-s", "200",
			"-load", seed, "-shards", "3",
			"-checkpoint", ckpt,
		})
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Second}
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := client.Get(base + "/stats")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			if up {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never became reachable")
	}

	resp, err := client.Post(base+"/ingest", "application/json",
		bytes.NewBufferString(`{"keys":[1,2,3,4,5,6,7,8,9,10]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ing map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ing["n"] != 20_010 {
		t.Fatalf("n after bulk load + ingest = %d, want 20010", ing["n"])
	}

	resp, err = client.Get(base + "/quantile?phi=0.5")
	if err != nil {
		t.Fatal(err)
	}
	var q map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile status %d: %v", resp.StatusCode, q)
	}
	if _, err := strconv.ParseInt(q["lower"].(string), 10, 64); err != nil {
		t.Fatalf("median lower bound not an int64: %v", q["lower"])
	}

	// Graceful shutdown: drain, checkpoint, exit nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down within 10s of SIGTERM")
	}

	sum, err := loadSummaryFile(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if sum.N() != 20_010 {
		t.Fatalf("checkpoint N = %d, want 20010", sum.N())
	}
}
