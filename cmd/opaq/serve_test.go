package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"opaq"
	"opaq/opaqclient"
)

// freePort reserves then releases an ephemeral port. The tiny window in
// which another process could grab it is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCmdServeEndToEnd drives the full serving story: bulk-load a run
// file, ingest over HTTP, query quantiles and stats, then shut down
// gracefully via SIGTERM and verify the final checkpoint restores.
func TestCmdServeEndToEnd(t *testing.T) {
	seed := genFile(t, "uniform", 20_000)
	ckpt := filepath.Join(t.TempDir(), "state.sum")
	addr := freePort(t)

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-m", "2000", "-s", "200",
			"-load", seed, "-shards", "3",
			"-checkpoint", ckpt,
		})
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Second}
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := client.Get(base + "/stats")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			if up {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never became reachable")
	}

	resp, err := client.Post(base+"/ingest", "application/json",
		bytes.NewBufferString(`{"keys":[1,2,3,4,5,6,7,8,9,10]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ing map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ing["n"] != 20_010 {
		t.Fatalf("n after bulk load + ingest = %d, want 20010", ing["n"])
	}

	resp, err = client.Get(base + "/quantile?phi=0.5")
	if err != nil {
		t.Fatal(err)
	}
	var q map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile status %d: %v", resp.StatusCode, q)
	}
	if _, err := strconv.ParseInt(q["lower"].(string), 10, 64); err != nil {
		t.Fatalf("median lower bound not an int64: %v", q["lower"])
	}

	// Graceful shutdown: drain, checkpoint, exit nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down within 10s of SIGTERM")
	}

	sum, err := loadSummaryFile(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if sum.N() != 20_010 {
		t.Fatalf("checkpoint N = %d, want 20010", sum.N())
	}
}

// TestCmdServeCompact drives -compact end to end: a serving process under
// an aggressive epoch policy seals dozens of epochs, and /healthz must
// report a logarithmically bounded ring ("epochs") alongside nonzero
// "compactions" — while quantile answers keep flowing.
func TestCmdServeCompact(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-m", "512", "-s", "64", "-stripes", "1",
			"-epoch", "512", "-compact",
		})
	}()
	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Second}
	up := false
	for i := 0; i < 100 && !up; i++ {
		if resp, err := client.Get(base + "/healthz"); err == nil {
			up = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if !up {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !up {
		t.Fatal("server never became healthy")
	}

	// 40 run-aligned batches: one seal each under -epoch 512.
	var keys []string
	for i := 0; i < 512; i++ {
		keys = append(keys, strconv.Itoa(i))
	}
	body := `{"keys":[` + strings.Join(keys, ",") + `]}`
	for batch := 0; batch < 40; batch++ {
		resp, err := client.Post(base+"/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", batch, resp.StatusCode)
		}
	}

	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sealed := st["sealed_epochs"].(float64)
	ring := st["epochs"].(float64)
	compactions := st["compactions"].(float64)
	if sealed < 30 {
		t.Fatalf("only %g epochs sealed; the policy should have rotated ~40 times", sealed)
	}
	if compactions == 0 {
		t.Fatal("server never compacted despite -compact")
	}
	if ring >= sealed/2 || ring > 8 {
		t.Fatalf("ring depth %g not compacted (sealed %g)", ring, sealed)
	}
	resp, err = client.Get(base + "/quantile?phi=0.5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile on compacted server: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down within 10s of SIGTERM")
	}
}

// TestCmdServeBinaryIngest drives the wire-speed ingest path end to end:
// one serve process accepts binary frames on both transports — content-
// negotiated on the HTTP ingest route and on the -ingest-addr TCP
// listener — from the opaqclient batching client, routes TCP frames to a
// named tenant, and drains both listeners cleanly on SIGTERM.
func TestCmdServeBinaryIngest(t *testing.T) {
	addr, tcpAddr := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-ingest-addr", tcpAddr,
			"-m", "512", "-s", "64", "-stripes", "1",
			"-tenants", "latency",
		})
	}()
	base := "http://" + addr
	client := &http.Client{Timeout: 2 * time.Second}
	up := false
	for i := 0; i < 100 && !up; i++ {
		if resp, err := client.Get(base + "/healthz"); err == nil {
			up = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if !up {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !up {
		t.Fatal("server never became healthy")
	}

	// Binary frames over HTTP into the default tenant.
	hc := opaqclient.NewHTTP(base, opaq.Int64Codec{}, opaqclient.Options{MaxBatch: 256})
	for i := int64(0); i < 1000; i++ {
		if err := hc.Add(i); err != nil {
			t.Fatalf("http add: %v", err)
		}
	}
	if err := hc.Close(); err != nil {
		t.Fatalf("http close: %v", err)
	}
	if n := hc.N(); n != 1000 {
		t.Fatalf("http client: server acked n=%d, want 1000", n)
	}

	// Binary frames over TCP into the "latency" tenant.
	tc, err := opaqclient.DialTCP(tcpAddr, opaq.Int64Codec{},
		opaqclient.Options{Tenant: "latency", MaxBatch: 256})
	if err != nil {
		t.Fatalf("tcp dial: %v", err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := tc.Add(i); err != nil {
			t.Fatalf("tcp add: %v", err)
		}
	}
	if err := tc.Close(); err != nil {
		t.Fatalf("tcp close: %v", err)
	}
	if n := tc.N(); n != 2000 {
		t.Fatalf("tcp client: server acked n=%d, want 2000", n)
	}

	// Each transport's elements landed in its own tenant.
	statsN := func(path string) float64 {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st["n"].(float64)
	}
	if n := statsN("/stats"); n != 1000 {
		t.Fatalf("default tenant n = %g, want 1000", n)
	}
	if n := statsN("/t/latency/stats"); n != 2000 {
		t.Fatalf("latency tenant n = %g, want 2000", n)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down within 10s of SIGTERM")
	}
}

// TestCmdServeFlagValidation pins the trigger-dependency checks: retention
// and pending-bytes backpressure are inert (or a permanent 429) without an
// epoch seal trigger, so serve must refuse the combination up front.
func TestCmdServeFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-window", "4", "-retain-age", "1m"},
		{"-window", "4"},
		{"-retain-age", "1m"},
		{"-max-pending", "1048576"},
		// A bound partial-run buffers alone can cross never drains:
		// 1 stripe × (1024−1) × 8 = 8184 bytes of unsealable capacity.
		{"-max-pending", "1000", "-epoch", "4096", "-stripes", "1", "-m", "1024", "-s", "128"},
	} {
		if err := cmdServe(args); err == nil {
			t.Errorf("cmdServe(%v) = nil, want a flag-validation error", args)
		}
	}
	// With a trigger the same flags are accepted past validation (the
	// bad address proves we reached the listen step).
	err := cmdServe([]string{"-window", "4", "-epoch", "1024", "-addr", "256.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Errorf("trigger+window should pass validation and fail at listen, got %v", err)
	}
}

// TestCmdServeRestoreSkippedWhenWarm pins the seed-vs-warm-boot rule: a
// -restore seed lands as its own epoch, so re-applying it on top of a
// default tenant already restored from -checkpoint-dir would double the
// history on every reboot. The warm state must win.
func TestCmdServeRestoreSkippedWhenWarm(t *testing.T) {
	dir := t.TempDir()
	seed := filepath.Join(dir, "seed.sum")
	src, err := opaq.NewEngine[int64](opaq.EngineOptions{
		Config: opaq.Config{RunLen: 512, SampleSize: 64}, Stripes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.IngestBatch(make([]int64, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := src.CheckpointFile(seed, opaq.Int64Codec{}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "tenants")

	defaultN := func(base string) float64 {
		t.Helper()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Tenants map[string]map[string]any `json:"tenants"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Tenants["default"]["n"].(float64)
	}
	cycle := func(wantN float64) {
		t.Helper()
		addr := freePort(t)
		done := make(chan error, 1)
		go func() {
			done <- cmdServe([]string{
				"-addr", addr, "-m", "512", "-s", "64",
				"-restore", seed, "-checkpoint-dir", ckptDir,
			})
		}()
		base := "http://" + addr
		client := &http.Client{Timeout: 2 * time.Second}
		up := false
		for i := 0; i < 100 && !up; i++ {
			if resp, err := client.Get(base + "/healthz"); err == nil {
				up = resp.StatusCode == http.StatusOK
				resp.Body.Close()
			}
			if !up {
				time.Sleep(50 * time.Millisecond)
			}
		}
		if !up {
			t.Fatal("server never became healthy")
		}
		if n := defaultN(base); n != wantN {
			t.Fatalf("default tenant n = %g, want %g", n, wantN)
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("serve did not shut down")
		}
	}
	cycle(1000) // cold boot: seed restored
	cycle(1000) // warm boot: seed skipped, not layered on the checkpoint
	cycle(1000) // and stays stable across further reboots
}

// TestCmdServeMultiTenant pins the multi-tenant acceptance criterion end
// to end: two tenants ingest concurrently through one serve process,
// answer independent quantile queries, checkpoint to separate files on
// shutdown and restore warm on restart.
func TestCmdServeMultiTenant(t *testing.T) {
	ckptDir := filepath.Join(t.TempDir(), "tenants")

	serve := func() (string, chan error) {
		done := make(chan error, 1)
		addr := freePort(t)
		go func() {
			done <- cmdServe([]string{
				"-addr", addr, "-m", "512", "-s", "64",
				"-tenants", "orders,users",
				"-epoch", "2048", "-window", "8",
				"-checkpoint-dir", ckptDir,
			})
		}()
		return "http://" + addr, done
	}
	waitUp := func(base string) {
		t.Helper()
		client := &http.Client{Timeout: 2 * time.Second}
		for i := 0; i < 100; i++ {
			resp, err := client.Get(base + "/healthz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatal("server never became healthy")
	}
	shutdown := func(done chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("serve did not shut down within 10s of SIGTERM")
		}
	}

	base, done := serve()
	waitUp(base)

	// Two tenants ingest disjoint ranges concurrently.
	var wg sync.WaitGroup
	for tenant, keyBase := range map[string]int64{"orders": 1_000_000, "users": 10} {
		wg.Add(1)
		go func(tenant string, keyBase int64) {
			defer wg.Done()
			for batch := 0; batch < 10; batch++ {
				var keys []string
				for i := int64(0); i < 500; i++ {
					keys = append(keys, strconv.FormatInt(keyBase+i, 10))
				}
				body := `{"keys":["` + strings.Join(keys, `","`) + `"]}`
				resp, err := http.Post(base+"/t/"+tenant+"/ingest", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tenant %s ingest: status %d", tenant, resp.StatusCode)
					return
				}
			}
		}(tenant, keyBase)
	}
	wg.Wait()

	median := func(tenant string) int64 {
		t.Helper()
		resp, err := http.Get(base + "/t/" + tenant + "/quantile?phi=0.5")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s quantile: status %d", tenant, resp.StatusCode)
		}
		var q map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseInt(q["lower"].(string), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if m := median("orders"); m < 1_000_000 {
		t.Fatalf("orders median %d below its key range", m)
	}
	if m := median("users"); m >= 1_000 {
		t.Fatalf("users median %d contaminated by the orders range", m)
	}
	shutdown(done)

	// Separate per-tenant checkpoint files exist (default tenant too).
	for _, name := range []string{"default", "orders", "users"} {
		if _, err := os.Stat(filepath.Join(ckptDir, name+".ckpt")); err != nil {
			t.Fatalf("tenant %s checkpoint: %v", name, err)
		}
	}

	// Restart over the same directory: tenants restore warm and keep
	// serving their own statistics.
	base, done = serve()
	waitUp(base)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Tenants map[string]map[string]any `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{"orders", "users"} {
		if n := health.Tenants[name]["n"].(float64); n != 5000 {
			t.Fatalf("restored tenant %s n = %g, want 5000", name, n)
		}
	}
	if m := median("orders"); m < 1_000_000 {
		t.Fatalf("restored orders median %d below its key range", m)
	}
	shutdown(done)
}

// TestCmdServeTenantOptionsPersistence pins the per-tenant Options
// sidecar through the serve (worker) path: a tenant admin-created with
// its own run length, stripes and retention must come back from a
// reboot with exactly that configuration — not the registry defaults —
// because the distributed tier restarts workers routinely and a worker
// that silently reconfigured its tenants would stop being byte-
// equivalent to the fleet it left. Also covers the worker-mode summary
// RPC (GET /t/{tenant}/summary) and the opaqclient Query reader the
// coordinator smoke relies on.
func TestCmdServeTenantOptionsPersistence(t *testing.T) {
	ckptDir := t.TempDir()
	serve := func() (string, chan error) {
		done := make(chan error, 1)
		addr := freePort(t)
		go func() {
			done <- cmdServe([]string{
				"-addr", addr, "-m", "512", "-s", "64", "-stripes", "2",
				"-checkpoint-dir", ckptDir,
			})
		}()
		return "http://" + addr, done
	}
	client := &http.Client{Timeout: 2 * time.Second}
	waitUp := func(base string) {
		t.Helper()
		for i := 0; i < 100; i++ {
			resp, err := client.Get(base + "/healthz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatal("server never became healthy")
	}
	shutdown := func(done chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("serve did not shut down within 10s of SIGTERM")
		}
	}
	tenantStats := func(base string) (n, stripes float64) {
		t.Helper()
		resp, err := client.Get(base + "/t/fast/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st["n"].(float64), st["stripes"].(float64)
	}

	base, done := serve()
	waitUp(base)

	// Create "fast" with options diverging from every relevant default.
	resp, err := client.Post(base+"/admin/tenants", "application/json",
		strings.NewReader(`{"name":"fast","m":1024,"s":128,"stripes":3,
			"epoch_max_elems":4096,"retain":"last_k","retain_k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admin create: status %d", resp.StatusCode)
	}
	var keys []string
	for i := 0; i < 2048; i++ {
		keys = append(keys, strconv.Itoa(i*3))
	}
	resp, err = client.Post(base+"/t/fast/ingest", "application/json",
		strings.NewReader(`{"keys":[`+strings.Join(keys, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	// The summary RPC the coordinator scatter-gathers from.
	resp, err = client.Get(base + "/t/fast/summary")
	if err != nil {
		t.Fatal(err)
	}
	sumBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(sumBytes) == 0 {
		t.Fatalf("summary: status %d, %d bytes, err %v", resp.StatusCode, len(sumBytes), err)
	}
	shutdown(done)

	// The sidecar sits next to the checkpoint for every tenant.
	for _, name := range []string{"default", "fast"} {
		if _, err := os.Stat(filepath.Join(ckptDir, name+".opts.json")); err != nil {
			t.Fatalf("tenant %s options sidecar: %v", name, err)
		}
	}

	// Reboot: the custom configuration survives, not the -stripes 2 /
	// -m 512 defaults the process was started with.
	base, done = serve()
	waitUp(base)
	n, stripes := tenantStats(base)
	if n != 2048 {
		t.Fatalf("restored n = %g, want 2048", n)
	}
	if stripes != 3 {
		t.Fatalf("restored stripes = %g, want the tenant's own 3", stripes)
	}

	// The Query reader sees the same state through the typed client.
	q := opaqclient.NewQuery(base, opaqclient.Options{Tenant: "fast"})
	st, err := q.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2048 || st.Partial {
		t.Fatalf("Query stats = %+v, want n=2048 partial=false", st)
	}
	qa, err := q.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if qa.Partial {
		t.Fatal("single-server quantile reported partial")
	}
	if _, err := strconv.ParseInt(qa.Lower, 10, 64); err != nil {
		t.Fatalf("median lower bound not an int64: %q", qa.Lower)
	}
	shutdown(done)
}
