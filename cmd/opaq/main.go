// Command opaq estimates quantiles of disk-resident run files with the
// OPAQ algorithm.
//
// Usage:
//
//	opaq gen       -out data.run -n 1000000 -dist zipf -seed 7
//	opaq quantiles -in data.run -q 10 -m 65536 -s 1024 -shards 8
//	opaq exact     -in data.run -phi 0.5 -m 65536 -s 1024
//	opaq rank      -in data.run -key 12345 -m 65536 -s 1024
//	opaq histogram -in data.run -buckets 20 -m 65536 -s 1024
//	opaq sort      -in data.run -out sorted.run -buckets 16 -m 65536 -s 1024
//	opaq checkpoint -in data.run -out state.sum -m 65536 -s 1024
//	opaq merge     -a day1.sum -b day2.sum -out all.sum -q 10
//	opaq cdf       -in data.run -key 12345 -m 65536 -s 1024
//	opaq serve     -addr :8080 -m 65536 -s 1024 -load data.run -checkpoint state.sum
//	opaq serve     -addr :8080 -tenants orders,users -epoch 1000000 -window 24 \
//	               -checkpoint-dir /var/lib/opaq -max-pending 67108864
//	opaq worker    -addr :9001 -checkpoint-dir /var/lib/opaq-w1
//	opaq coord     -addr :8080 -workers http://h1:9001,http://h2:9001 -spread 2
//
// Every subcommand performs the minimum number of passes: quantiles,
// rank and histogram one pass; exact two; sort three. -shards N routes the
// build through the sharded engine (N concurrent shards, PSRS-style sample
// merge); the summary is bit-identical to the single-shard build.
//
// serve runs the live quantile service: POST /ingest streams keys in;
// GET /quantile, /quantiles, /selectivity and /stats answer from
// epoch-cached snapshots; GET /healthz reports liveness plus per-tenant
// stats; and SIGINT/SIGTERM drain in-flight queries before checkpointing
// the final state. Summaries move through an epoch lifecycle: -epoch,
// -epoch-bytes and -epoch-interval seal completed runs into immutable
// epochs, and -window K (last K epochs) or -retain-age D (trailing
// wall-clock window) evict aged epochs so quantiles describe a sliding
// window instead of everything ever seen. -tenants serves several
// independently queryable engines behind one mux (/t/{tenant}/...; the
// root routes alias the default tenant; POST/GET/DELETE /admin/tenants
// manage the set at runtime), each checkpointing to its own file in
// -checkpoint-dir and restoring warm on boot. -max-body and -max-pending
// bound resident ingest state (413 / 429 + Retry-After beyond them).
//
// worker and coord form the distributed tier. worker is serve under the
// name the cluster gives it: one engine registry process owning a shard
// of the tenants, checkpointing locally. coord fronts a fleet of
// workers with the same HTTP surface — tenants are placed by a
// consistent-hash ring, ingest routes to the owning workers, queries
// scatter-gather per-worker summaries and merge them (summaries are
// mergeable by construction, so the merged answer is byte-identical to
// a single-process build over the same run-aligned stream). When a
// worker is down the coordinator answers from the survivors with
// "partial": true, and /healthz aggregates fleet health.
package main

import (
	"flag"
	"fmt"
	"os"

	"opaq"
	"opaq/internal/datagen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "quantiles":
		err = cmdQuantiles(os.Args[2:])
	case "exact":
		err = cmdExact(os.Args[2:])
	case "rank":
		err = cmdRank(os.Args[2:])
	case "histogram":
		err = cmdHistogram(os.Args[2:])
	case "sort":
		err = cmdSort(os.Args[2:])
	case "checkpoint":
		err = cmdCheckpoint(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "cdf":
		err = cmdCDF(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		// A worker is serve wearing its cluster hat: an engine registry
		// with local checkpoints, fronted by a coordinator.
		err = cmdServe(os.Args[2:])
	case "coord":
		err = cmdCoord(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "opaq: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "opaq: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: opaq <gen|quantiles|exact|rank|histogram|sort|checkpoint|merge|cdf|serve|worker|coord> [flags]
run "opaq <subcommand> -h" for flags`)
}

// sampleArgs are the flags shared by every summary-building subcommand.
type sampleArgs struct {
	in     *string
	m, s   *int
	w      *int
	shards *int
}

func sampleFlags(fs *flag.FlagSet) sampleArgs {
	return sampleArgs{
		in:     fs.String("in", "", "input run file"),
		m:      fs.Int("m", 1<<16, "run length (elements per run)"),
		s:      fs.Int("s", 1<<10, "samples per run (must divide m)"),
		w:      fs.Int("workers", 0, "concurrent sampling workers per shard (0 = GOMAXPROCS, 1 = sequential)"),
		shards: fs.Int("shards", 1, "build through the sharded engine with this many shards (result is bit-identical to -shards 1)"),
	}
}

// build produces the summary: sequentially for -shards 1, through the
// sharded engine otherwise (the file is split into run-aligned sections
// scanned concurrently — no materialization). Either way the summary bytes
// are identical.
func (a sampleArgs) build() (opaq.Dataset[int64], *opaq.Summary[int64], error) {
	if *a.in == "" {
		return nil, nil, fmt.Errorf("missing -in")
	}
	ds, err := opaq.OpenInt64File(*a.in)
	if err != nil {
		return nil, nil, err
	}
	cfg := opaq.Config{RunLen: *a.m, SampleSize: *a.s, Workers: *a.w}
	if *a.shards < 1 {
		return nil, nil, fmt.Errorf("-shards must be ≥ 1, got %d", *a.shards)
	}
	if *a.shards == 1 {
		sum, err := opaq.BuildFromDataset(ds, cfg)
		if err != nil {
			return nil, nil, err
		}
		return ds, sum, nil
	}
	sections, err := opaq.ShardFile(*a.in, opaq.Int64Codec{}, *a.shards, *a.m)
	if err != nil {
		return nil, nil, err
	}
	sum, err := opaq.BuildSharded(sections, cfg, opaq.ShardOptions{Merge: opaq.SampleMerge})
	if err != nil {
		return nil, nil, err
	}
	return ds, sum, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output run file")
	n := fs.Int64("n", 1_000_000, "number of keys")
	dist := fs.String("dist", "uniform", "distribution: uniform, zipf, sorted, reverse, normal")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("missing -out")
	}
	var g datagen.Generator
	switch *dist {
	case "uniform", "zipf":
		var err error
		if g, err = datagen.PaperGenerator(*dist, int(*n), *seed); err != nil {
			return err
		}
	case "sorted":
		g = datagen.NewSorted(1)
	case "reverse":
		g = datagen.NewReverse(*n, 1)
	case "normal":
		g = datagen.NewNormal(*seed, 1e9, 1e8)
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	if err := opaq.WriteInt64FileFunc(*out, *n, func(int64) int64 { return g.Next() }); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s keys to %s\n", *n, *dist, *out)
	return nil
}

func cmdQuantiles(args []string) error {
	fs := flag.NewFlagSet("quantiles", flag.ExitOnError)
	sa := sampleFlags(fs)
	q := fs.Int("q", 10, "report the q−1 equally spaced quantiles")
	fs.Parse(args)
	_, sum, err := sa.build()
	if err != nil {
		return err
	}
	bounds, err := sum.Quantiles(*q)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d runs=%d samples=%d error bound=%d elements (≈ n/s)\n",
		sum.N(), sum.Runs(), sum.SampleCount(), sum.ErrorBound())
	fmt.Printf("%-8s %-22s %-22s %s\n", "phi", "lower", "upper", "max elems to truth")
	for _, b := range bounds {
		fmt.Printf("%-8.2f %-22d %-22d ≤%d/≤%d\n", b.Phi, b.Lower, b.Upper, b.MaxBelow, b.MaxAbove)
	}
	return nil
}

func cmdExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	sa := sampleFlags(fs)
	phi := fs.Float64("phi", 0.5, "quantile fraction in (0,1]")
	fs.Parse(args)
	ds, sum, err := sa.build()
	if err != nil {
		return err
	}
	v, err := opaq.ExactQuantile(ds, sum, *phi)
	if err != nil {
		return err
	}
	fmt.Printf("exact %g-quantile = %d (two passes)\n", *phi, v)
	return nil
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	sa := sampleFlags(fs)
	key := fs.Int64("key", 0, "key whose rank to bound")
	fs.Parse(args)
	_, sum, err := sa.build()
	if err != nil {
		return err
	}
	lo, hi := sum.RankBounds(*key)
	fmt.Printf("rank(%d) ∈ [%d, %d] of %d (width %d)\n", *key, lo, hi, sum.N(), hi-lo)
	return nil
}

func cmdHistogram(args []string) error {
	fs := flag.NewFlagSet("histogram", flag.ExitOnError)
	sa := sampleFlags(fs)
	buckets := fs.Int("buckets", 10, "equi-depth bucket count")
	fs.Parse(args)
	_, sum, err := sa.build()
	if err != nil {
		return err
	}
	h, err := opaq.BuildHistogram(sum, *buckets)
	if err != nil {
		return err
	}
	fmt.Printf("equi-depth histogram: %d buckets × ≈%d elements, boundary slack ≤ %d ranks\n",
		h.Buckets(), sum.N()/int64(*buckets), h.SlackRanks())
	for i, b := range h.Boundaries() {
		fmt.Printf("bucket %2d: ≤ %d\n", i, b)
	}
	return nil
}

func cmdSort(args []string) error {
	fs := flag.NewFlagSet("sort", flag.ExitOnError)
	sa := sampleFlags(fs)
	out := fs.String("out", "", "output run file")
	buckets := fs.Int("buckets", 16, "partition count (each partition must fit in memory)")
	fs.Parse(args)
	if *sa.in == "" || *out == "" {
		return fmt.Errorf("missing -in or -out")
	}
	if *sa.shards != 1 {
		return fmt.Errorf("sort does not support -shards; its splitter and bucket passes parallelize via -workers")
	}
	st, err := opaq.ExternalSort(*sa.in, *out, opaq.SortOptions{
		Buckets: *buckets,
		Config:  opaq.Config{RunLen: *sa.m, SampleSize: *sa.s, Workers: *sa.w},
	})
	if err != nil {
		return err
	}
	fmt.Printf("sorted %d keys into %s via %d partitions (imbalance %.3f)\n",
		st.N, *out, *buckets, st.Imbalance())
	return nil
}

func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	sa := sampleFlags(fs)
	out := fs.String("out", "", "output summary file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("missing -out")
	}
	_, sum, err := sa.build()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := opaq.SaveSummaryInt64(f, sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("checkpointed summary of %d elements (%d samples) to %s\n",
		sum.N(), sum.SampleCount(), *out)
	return nil
}

func loadSummaryFile(path string) (*opaq.Summary[int64], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return opaq.LoadSummaryInt64(f)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	a := fs.String("a", "", "first summary file")
	b := fs.String("b", "", "second summary file")
	out := fs.String("out", "", "merged summary file (optional)")
	q := fs.Int("q", 10, "report the q−1 quantiles of the merged summary")
	fs.Parse(args)
	if *a == "" || *b == "" {
		return fmt.Errorf("missing -a or -b")
	}
	sa, err := loadSummaryFile(*a)
	if err != nil {
		return err
	}
	sb, err := loadSummaryFile(*b)
	if err != nil {
		return err
	}
	merged, err := opaq.Merge(sa, sb)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := opaq.SaveSummaryInt64(f, merged); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("merged: n=%d runs=%d samples=%d\n", merged.N(), merged.Runs(), merged.SampleCount())
	bounds, err := merged.Quantiles(*q)
	if err != nil {
		return err
	}
	for _, bd := range bounds {
		fmt.Printf("phi=%.2f  [%d, %d]\n", bd.Phi, bd.Lower, bd.Upper)
	}
	return nil
}

func cmdCDF(args []string) error {
	fs := flag.NewFlagSet("cdf", flag.ExitOnError)
	sa := sampleFlags(fs)
	key := fs.Int64("key", 0, "key whose CDF to bound")
	fs.Parse(args)
	_, sum, err := sa.build()
	if err != nil {
		return err
	}
	lo, hi := sum.CDF(*key)
	fmt.Printf("CDF(%d) ∈ [%.4f, %.4f]\n", *key, lo, hi)
	return nil
}
