package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opaq"
)

// cmdServe runs the live quantile service: a long-lived engine ingesting
// int64 keys over HTTP and answering quantile / selectivity / stats
// queries from epoch-cached snapshots. SIGINT/SIGTERM drain in-flight
// queries before exiting, optionally checkpointing the final state.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	m := fs.Int("m", 1<<16, "run length (elements per run)")
	s := fs.Int("s", 1<<10, "samples per run (must divide m)")
	stripes := fs.Int("stripes", 0, "ingest stripes (0 = GOMAXPROCS)")
	buckets := fs.Int("buckets", 16, "equi-depth buckets for selectivity queries")
	load := fs.String("load", "", "run file to bulk-load before serving")
	shards := fs.Int("shards", 4, "bulk-load shard count")
	restorePath := fs.String("restore", "", "checkpoint file to restore before serving")
	checkpointPath := fs.String("checkpoint", "", "checkpoint file written after a graceful shutdown")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	fs.Parse(args)

	eng, err := opaq.NewEngine[int64](opaq.EngineOptions{
		Config:  opaq.Config{RunLen: *m, SampleSize: *s},
		Stripes: *stripes,
		Buckets: *buckets,
	})
	if err != nil {
		return err
	}
	if *restorePath != "" {
		if err := eng.RestoreFile(*restorePath, opaq.Int64Codec{}); err != nil {
			return fmt.Errorf("restore %s: %w", *restorePath, err)
		}
		fmt.Printf("opaq: restored %d elements from %s\n", eng.N(), *restorePath)
	}
	if *load != "" {
		sections, err := opaq.ShardFile(*load, opaq.Int64Codec{}, *shards, *m)
		if err != nil {
			return fmt.Errorf("bulk load %s: %w", *load, err)
		}
		if err := eng.BulkLoad(sections, opaq.ShardOptions{Merge: opaq.SampleMerge}); err != nil {
			return fmt.Errorf("bulk load %s: %w", *load, err)
		}
		fmt.Printf("opaq: bulk-loaded %s (%d shards, n=%d)\n", *load, *shards, eng.N())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: opaq.NewEngineHandler(eng, opaq.ParseInt64Key)}
	fmt.Printf("opaq: serving on http://%s\n", ln.Addr())

	// The signal handler is installed before the server accepts its first
	// request, so a shutdown signal can never hit the default handler once
	// the service is reachable.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Printf("opaq: %v — draining in-flight queries\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if *checkpointPath != "" {
			if err := eng.CheckpointFile(*checkpointPath, opaq.Int64Codec{}); err != nil {
				return fmt.Errorf("final checkpoint: %w", err)
			}
			fmt.Printf("opaq: checkpointed %d elements to %s\n", eng.N(), *checkpointPath)
		}
		fmt.Println("opaq: shutdown complete")
		return nil
	}
}
