package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"opaq"
)

// cmdServe runs the live quantile service: a registry of per-tenant
// engines ingesting int64 keys over HTTP — JSON or binary frames,
// content-negotiated on the same route — plus an optional
// persistent-connection binary TCP listener (-ingest-addr), answering
// quantile / selectivity / stats queries from epoch-cached snapshots. Summaries move
// through the epoch lifecycle (-epoch* seal triggers, -window / -retain-age
// retention), tenants checkpoint to separate files in -checkpoint-dir and
// restore from it on boot, and SIGINT/SIGTERM drain in-flight queries
// before exiting, checkpointing the final state.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	ingestAddr := fs.String("ingest-addr", "", "additional listen address for persistent-connection binary TCP ingest (empty = HTTP only)")
	m := fs.Int("m", 1<<16, "run length (elements per run)")
	s := fs.Int("s", 1<<10, "samples per run (must divide m)")
	stripes := fs.Int("stripes", 0, "ingest stripes per tenant (0 = GOMAXPROCS)")
	buckets := fs.Int("buckets", 16, "equi-depth buckets for selectivity queries")
	epochElems := fs.Int64("epoch", 0, "seal an epoch when this many unsealed elements accumulate (0 = no count trigger)")
	epochBytes := fs.Int64("epoch-bytes", 0, "seal an epoch when unsealed bytes reach this bound (0 = no bytes trigger)")
	epochInterval := fs.Duration("epoch-interval", 0, "seal an epoch on this wall-clock tick (0 = no timer)")
	window := fs.Int("window", 0, "retain only the last K sealed epochs (0 = keep all; windowed serving)")
	retainAge := fs.Duration("retain-age", 0, "retain only epochs sealed within this trailing window (0 = keep all)")
	compact := fs.Bool("compact", false, "binary-buddy compact sealed epochs after each rotation: answers unchanged, ring depth bounded at O(log seals)")
	compactMin := fs.Int("compact-min", 0, "compact only while the epoch ring holds more than this many entries (0 = always; preserves eviction granularity for shallow rings)")
	tenants := fs.String("tenants", "", "comma-separated tenants to create at boot (the default tenant always exists)")
	checkpointDir := fs.String("checkpoint-dir", "", "directory of per-tenant checkpoints: restored on boot, written on graceful shutdown")
	maxBody := fs.Int64("max-body", 0, "cap one POST /ingest body in bytes (0 = 8 MiB default, -1 = uncapped)")
	maxPending := fs.Int64("max-pending", 0, "shed ingests with 429 while unsealed bytes exceed this bound (0 = no shedding)")
	load := fs.String("load", "", "run file to bulk-load into the default tenant before serving")
	shards := fs.Int("shards", 4, "bulk-load shard count")
	restorePath := fs.String("restore", "", "checkpoint file to restore into the default tenant before serving")
	checkpointPath := fs.String("checkpoint", "", "default tenant's checkpoint file written after a graceful shutdown")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	fs.Parse(args)

	if *window > 0 && *retainAge > 0 {
		return fmt.Errorf("-window and -retain-age are mutually exclusive")
	}
	// Retention and pending-bytes backpressure both depend on epochs being
	// sealed, and the server exposes no explicit Rotate: without a seal
	// trigger, -window/-retain-age would silently serve lifetime statistics
	// and -max-pending would turn into a permanent 429 once crossed.
	if noTrigger := *epochElems <= 0 && *epochBytes <= 0 && *epochInterval <= 0; noTrigger {
		if *window > 0 || *retainAge > 0 {
			return fmt.Errorf("-window/-retain-age need a seal trigger: set -epoch, -epoch-bytes or -epoch-interval")
		}
		if *maxPending > 0 {
			return fmt.Errorf("-max-pending needs a seal trigger to ever drain: set -epoch, -epoch-bytes or -epoch-interval")
		}
	}
	if *maxPending > 0 {
		// Rotation seals only completed runs: each stripe can pin up to
		// RunLen−1 elements in a partial buffer that no seal drains. A
		// bound at or below that capacity could be crossed by partials
		// alone and 429 every ingest forever.
		effStripes := *stripes
		if effStripes == 0 {
			effStripes = runtime.GOMAXPROCS(0)
		}
		floor := int64(effStripes) * int64(*m-1) * 8
		if *maxPending <= floor {
			return fmt.Errorf("-max-pending %d can never drain: %d stripes × (m−1) partial-run elements pin up to %d bytes that no rotation seals; raise -max-pending above that or lower -m/-stripes",
				*maxPending, effStripes, floor)
		}
	}
	retention := opaq.EngineRetention{Kind: opaq.RetainAll}
	if *window > 0 {
		retention = opaq.EngineRetention{Kind: opaq.RetainLastK, K: *window}
	} else if *retainAge > 0 {
		retention = opaq.EngineRetention{Kind: opaq.RetainMaxAge, MaxAge: *retainAge}
	}
	defaults := opaq.EngineOptions{
		Config:  opaq.Config{RunLen: *m, SampleSize: *s},
		Stripes: *stripes,
		Buckets: *buckets,
		Epoch: opaq.EngineEpochPolicy{
			MaxElems: *epochElems,
			MaxBytes: *epochBytes,
			Interval: *epochInterval,
		},
		Retention:  retention,
		Compaction: opaq.EngineCompactionPolicy{Enabled: *compact, MinEpochs: *compactMin},
		// -max-pending stays an HTTP-layer bound here: the handler heals
		// (rotates) before shedding, which engine-side admission — built
		// for writers that bypass HTTP — deliberately does not.
	}

	reg, err := opaq.NewEngineRegistry(opaq.EngineRegistryOptions[int64]{
		Defaults:      defaults,
		CheckpointDir: *checkpointDir,
		Codec:         opaq.Int64Codec{},
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	warmDefault := false
	for _, name := range reg.Names() {
		eng, err := reg.Get(name)
		if err != nil {
			continue
		}
		if name == opaq.DefaultTenant {
			warmDefault = true
		}
		fmt.Printf("opaq: restored tenant %q (n=%d) from %s\n", name, eng.N(), *checkpointDir)
	}
	boot := []string{opaq.DefaultTenant}
	if *tenants != "" {
		boot = append(boot, strings.Split(*tenants, ",")...)
	}
	for _, name := range boot {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := reg.Get(name); err == nil {
			continue // restored from a checkpoint
		}
		if _, err := reg.Create(name, nil); err != nil {
			return fmt.Errorf("creating tenant %q: %w", name, err)
		}
	}

	eng, err := reg.Get(opaq.DefaultTenant)
	if err != nil {
		return err
	}
	if *restorePath != "" {
		// A restore lands as its own epoch, so layering the seed file on
		// top of a default tenant already warm from -checkpoint-dir would
		// absorb the same history twice (and again on every reboot). The
		// warm state wins; -restore seeds cold boots only.
		if warmDefault {
			fmt.Printf("opaq: skipping -restore %s: default tenant already warm from %s\n", *restorePath, *checkpointDir)
		} else {
			if err := eng.RestoreFile(*restorePath, opaq.Int64Codec{}); err != nil {
				return fmt.Errorf("restore %s: %w", *restorePath, err)
			}
			fmt.Printf("opaq: restored %d elements from %s\n", eng.N(), *restorePath)
		}
	}
	if *load != "" {
		sections, err := opaq.ShardFile(*load, opaq.Int64Codec{}, *shards, *m)
		if err != nil {
			return fmt.Errorf("bulk load %s: %w", *load, err)
		}
		if err := eng.BulkLoad(sections, opaq.ShardOptions{Merge: opaq.SampleMerge}); err != nil {
			return fmt.Errorf("bulk load %s: %w", *load, err)
		}
		fmt.Printf("opaq: bulk-loaded %s (%d shards, n=%d)\n", *load, *shards, eng.N())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := opaq.NewEngineRegistryHandler(reg, opaq.ParseInt64Key, opaq.EngineHandlerOptions{
		MaxBodyBytes:    *maxBody,
		MaxPendingBytes: *maxPending,
	})
	srv := &http.Server{Handler: handler}
	fmt.Printf("opaq: serving tenants %v on http://%s\n", reg.Names(), ln.Addr())

	// The binary TCP ingest listener shares the registry (and the same
	// pending-bytes bound) with the HTTP API; frames route to tenants by
	// their tenant field.
	var tcpSrv *opaq.EngineTCPServer[int64]
	tcpErrCh := make(chan error, 1)
	if *ingestAddr != "" {
		tcpLn, err := net.Listen("tcp", *ingestAddr)
		if err != nil {
			return fmt.Errorf("ingest listener: %w", err)
		}
		tcpSrv = opaq.NewEngineRegistryTCPServer(reg, opaq.Int64Codec{}, opaq.EngineTCPOptions{
			MaxPendingBytes: *maxPending,
		})
		fmt.Printf("opaq: binary ingest on tcp://%s\n", tcpLn.Addr())
		go func() { tcpErrCh <- tcpSrv.Serve(tcpLn) }()
	}

	// The signal handler is installed before the server accepts its first
	// request, so a shutdown signal can never hit the default handler once
	// the service is reachable.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case err := <-tcpErrCh:
		return fmt.Errorf("binary ingest: %w", err)
	case sig := <-sigCh:
		fmt.Printf("opaq: %v — draining in-flight queries\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		// HTTP first, then TCP: both stop accepting new batches before the
		// final checkpoints below capture the state, so an acked batch is
		// never left out of the checkpoint.
		if tcpSrv != nil {
			if err := tcpSrv.Shutdown(ctx); err != nil {
				return fmt.Errorf("binary ingest shutdown: %w", err)
			}
			<-tcpErrCh // Serve has returned net.ErrClosed
		}
		if *checkpointDir != "" {
			if err := reg.CheckpointAll(); err != nil {
				return fmt.Errorf("final checkpoints: %w", err)
			}
			fmt.Printf("opaq: checkpointed %d tenants to %s\n", len(reg.Names()), *checkpointDir)
		}
		if *checkpointPath != "" {
			if err := eng.CheckpointFile(*checkpointPath, opaq.Int64Codec{}); err != nil {
				return fmt.Errorf("final checkpoint: %w", err)
			}
			fmt.Printf("opaq: checkpointed %d elements to %s\n", eng.N(), *checkpointPath)
		}
		fmt.Println("opaq: shutdown complete")
		return nil
	}
}
