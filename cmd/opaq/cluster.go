package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opaq/internal/cluster"
	"opaq/internal/engine"
	"opaq/internal/runio"
)

// cmdCoord runs the distributed tier's front door: a stateless
// coordinator that consistent-hashes tenants across a fixed fleet of
// workers (each an `opaq worker` process), routes ingest to the owning
// workers and answers quantile / selectivity / stats queries by
// scatter-gathering per-worker summaries and merging them — the same
// HTTP surface as a single server, so clients don't care which they
// talk to. When a worker is down, answers come from the survivors with
// "partial": true; the coordinator itself holds no data, so restarting
// it (e.g. with a new -workers fleet) loses nothing.
func cmdCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := fs.String("workers", "", "comma-separated worker base URLs (e.g. http://h1:9001,http://h2:9001); required")
	spread := fs.Int("spread", 1, "distinct workers per tenant: ingest round-robins across them, queries merge them")
	vnodes := fs.Int("vnodes", 0, "consistent-hash virtual nodes per worker (0 = 64)")
	buckets := fs.Int("buckets", 0, "equi-depth buckets for selectivity over merged summaries (0 = engine default)")
	attempts := fs.Int("attempts", 0, "attempts per worker request before failing over (0 = 3)")
	backoff := fs.Duration("backoff", 0, "initial retry backoff, doubling per attempt (0 = 50ms)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request worker timeout")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	cacheBytes := fs.Int64("gather-cache", cluster.DefaultGatherCacheBytes,
		"gather-cache byte budget for cached worker summaries (0 disables the query fast path)")
	walDir := fs.String("wal-dir", "",
		"ingest write-ahead journal directory: batches no owner will take are journaled here and replayed when owners recover (empty disables journaling)")
	walMaxBytes := fs.Int64("wal-max-bytes", cluster.DefaultWALMaxBytes,
		"total on-disk byte budget across journals; appends past it fail the ingest 503")
	fs.Parse(args)

	if *workers == "" {
		return fmt.Errorf("missing -workers")
	}
	var fleet []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			fleet = append(fleet, strings.TrimRight(w, "/"))
		}
	}
	coord, err := cluster.New(cluster.Options[int64]{
		Workers:      fleet,
		Spread:       *spread,
		VirtualNodes: *vnodes,
		Codec:        runio.Int64Codec{},
		Parse:        engine.Int64Key,
		Buckets:      *buckets,
		Client: &cluster.WorkerClient{
			// The pooled transport keeps worker connections warm across
			// the scatter-gather fan-out instead of redialing per query.
			HTTP:     cluster.NewWorkerHTTPClient(*timeout),
			Attempts: *attempts,
			Backoff:  *backoff,
		},
		GatherCacheBytes:   *cacheBytes,
		DisableGatherCache: *cacheBytes == 0,
		WALDir:             *walDir,
		WALMaxBytes:        *walMaxBytes,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	fmt.Printf("opaq: coordinating %d workers (spread %d) on http://%s\n",
		len(fleet), *spread, ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Printf("opaq: %v — draining in-flight queries\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The drain timed out — likely handlers pinned in retry loops
			// against dead workers. Cancel the coordinator's lifetime
			// context to abort their backoffs, then close the listener
			// hard; shutdown must not hang on an unreachable fleet.
			coord.Close()
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		fmt.Println("opaq: coordinator shutdown complete")
		return nil
	}
}
