package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"opaq"
)

// The CLI handlers are plain functions over argv, so they are tested
// directly; output goes to stdout but correctness is checked through the
// files they produce and the errors they return.

func genFile(t *testing.T, dist string, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.run")
	if err := cmdGen([]string{"-out", path, "-n", itoa(n), "-dist", dist, "-seed", "3"}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestCmdGenAllDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf", "sorted", "reverse", "normal"} {
		path := genFile(t, dist, 5000)
		ds, err := opaq.OpenInt64File(path)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if ds.Count() != 5000 {
			t.Errorf("%s: count = %d", dist, ds.Count())
		}
	}
}

func TestCmdGenErrors(t *testing.T) {
	if err := cmdGen([]string{"-n", "10"}); err == nil {
		t.Error("missing -out should fail")
	}
	if err := cmdGen([]string{"-out", "/tmp/x.run", "-dist", "cauchy"}); err == nil {
		t.Error("unknown distribution should fail")
	}
}

func TestCmdQuantiles(t *testing.T) {
	path := genFile(t, "uniform", 20_000)
	if err := cmdQuantiles([]string{"-in", path, "-m", "2000", "-s", "200", "-q", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuantiles([]string{"-m", "2000", "-s", "200"}); err == nil {
		t.Error("missing -in should fail")
	}
	if err := cmdQuantiles([]string{"-in", path, "-m", "2000", "-s", "300"}); err == nil {
		t.Error("s ∤ m should fail")
	}
}

func TestCmdExactAndRank(t *testing.T) {
	path := genFile(t, "uniform", 20_000)
	if err := cmdExact([]string{"-in", path, "-phi", "0.5", "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExact([]string{"-in", path, "-phi", "7", "-m", "2000", "-s", "200"}); err == nil {
		t.Error("phi=7 should fail")
	}
	if err := cmdRank([]string{"-in", path, "-key", "12345", "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdHistogram(t *testing.T) {
	path := genFile(t, "zipf", 20_000)
	if err := cmdHistogram([]string{"-in", path, "-buckets", "8", "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdHistogram([]string{"-in", path, "-buckets", "0", "-m", "2000", "-s", "200"}); err == nil {
		t.Error("0 buckets should fail")
	}
}

func TestCmdSort(t *testing.T) {
	path := genFile(t, "reverse", 20_000)
	out := filepath.Join(t.TempDir(), "sorted.run")
	if err := cmdSort([]string{"-in", path, "-out", out, "-buckets", "4", "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
	ds, err := opaq.OpenInt64File(out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 20_000 {
		t.Errorf("sorted count = %d", ds.Count())
	}
	if err := cmdSort([]string{"-in", path}); err == nil {
		t.Error("missing -out should fail")
	}
}

func TestCmdCheckpointAndMerge(t *testing.T) {
	dir := t.TempDir()
	p1 := genFile(t, "uniform", 20_000)
	p2 := genFile(t, "uniform", 20_000)
	s1 := filepath.Join(dir, "a.sum")
	s2 := filepath.Join(dir, "b.sum")
	merged := filepath.Join(dir, "all.sum")
	if err := cmdCheckpoint([]string{"-in", p1, "-out", s1, "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheckpoint([]string{"-in", p2, "-out", s2, "-m", "2000", "-s", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMerge([]string{"-a", s1, "-b", s2, "-out", merged, "-q", "4"}); err != nil {
		t.Fatal(err)
	}
	got, err := loadSummaryFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 40_000 {
		t.Fatalf("merged N = %d", got.N())
	}
	if err := cmdMerge([]string{"-a", s1}); err == nil {
		t.Error("missing -b should fail")
	}
	if err := cmdCheckpoint([]string{"-in", p1, "-m", "2000", "-s", "200"}); err == nil {
		t.Error("missing -out should fail")
	}
}

func TestCmdCDF(t *testing.T) {
	path := genFile(t, "sorted", 10_000)
	if err := cmdCDF([]string{"-in", path, "-key", "5000", "-m", "1000", "-s", "100"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCDF([]string{"-key", "5"}); err == nil {
		t.Error("missing -in should fail")
	}
}

// -shards routes the build through the sharded engine; the resulting
// checkpoint must be byte-identical to the sequential build's.
func TestCmdShardsCheckpointIdentical(t *testing.T) {
	path := genFile(t, "zipf", 20_000)
	dir := t.TempDir()
	seqSum := filepath.Join(dir, "seq.sum")
	shdSum := filepath.Join(dir, "shd.sum")
	if err := cmdCheckpoint([]string{"-in", path, "-m", "2000", "-s", "200", "-out", seqSum}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheckpoint([]string{"-in", path, "-m", "2000", "-s", "200", "-shards", "3", "-out", shdSum}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(seqSum)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(shdSum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-shards 3 checkpoint differs from sequential checkpoint")
	}
	if err := cmdQuantiles([]string{"-in", path, "-m", "2000", "-s", "200", "-shards", "4", "-q", "4"}); err != nil {
		t.Fatalf("quantiles -shards: %v", err)
	}
	if err := cmdQuantiles([]string{"-in", path, "-shards", "0"}); err == nil {
		t.Error("-shards 0 should fail")
	}
}

func TestCmdSortRejectsShards(t *testing.T) {
	path := genFile(t, "uniform", 5000)
	out := filepath.Join(t.TempDir(), "out.run")
	if err := cmdSort([]string{"-in", path, "-out", out, "-m", "1000", "-s", "100", "-shards", "4"}); err == nil {
		t.Error("sort -shards should be rejected, not silently ignored")
	}
}
