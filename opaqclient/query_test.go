package opaqclient

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"opaq/internal/engine"
	"opaq/internal/runio"
)

// TestQuerySummaryConditionalCache pins the client side of the 304
// protocol: the first Summary call downloads and caches the bytes, an
// unchanged summary is answered from the cache off a conditional GET,
// and an ingest invalidates the tag so the next call downloads fresh
// bytes that match the engine's own checkpoint.
func TestQuerySummaryConditionalCache(t *testing.T) {
	e := newTestEngine(t)
	t.Cleanup(func() { e.Close() })
	codec := runio.Int64Codec{}
	var conditional atomic.Int64
	inner := engine.NewHandlerCodec(e, engine.Int64Key, codec, engine.HandlerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") != "" {
			conditional.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	batch := make([]int64, testCfg.RunLen)
	for i := range batch {
		batch[i] = int64(i * 31)
	}
	if err := e.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}

	q := NewQuery(srv.URL, Options{})
	cold, err := q.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Partial {
		t.Fatalf("cold Summary: cached %v partial %v", cold.Cached, cold.Partial)
	}
	var want bytes.Buffer
	if err := e.Checkpoint(&want, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes, want.Bytes()) {
		t.Fatalf("cold Summary bytes differ from checkpoint (%d vs %d)", len(cold.Bytes), want.Len())
	}

	warm, err := q.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("warm Summary re-downloaded an unchanged summary")
	}
	if !bytes.Equal(warm.Bytes, want.Bytes()) {
		t.Fatal("warm Summary bytes differ from the cold fetch")
	}
	if conditional.Load() != 1 {
		t.Fatalf("server saw %d conditional requests, want 1", conditional.Load())
	}

	// Ingest invalidates: the next call must download the new summary.
	for i := range batch {
		batch[i] = int64(i*31) + 7
	}
	if err := e.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	fresh, err := q.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("Summary served stale cache across an ingest")
	}
	want.Reset()
	if err := e.Checkpoint(&want, codec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes, want.Bytes()) {
		t.Fatal("post-ingest Summary bytes differ from the new checkpoint")
	}
	if conditional.Load() != 2 {
		t.Fatalf("server saw %d conditional requests, want 2", conditional.Load())
	}
}
