// Package opaqclient is the client side of the binary ingest path: it
// batches elements locally and ships them as runio ingest frames over a
// persistent TCP connection (DialTCP) or HTTP (NewHTTP), so callers hit
// the wire-speed path by default instead of per-element JSON.
//
// Batches flush on two triggers, mirroring the server's EpochPolicy
// shape: a size trigger (MaxBatch elements) and an optional wall-clock
// trigger (FlushInterval), whichever fires first. Every flush is one data
// frame acknowledged at batch granularity; an acked batch is resident in
// the server's engine and included in any later checkpoint.
//
// Backpressure is first-class: when the server sheds a batch, Flush (or
// the Add that triggered it) returns a *Backpressure carrying the
// server's Retry-After hint, and the batch stays buffered — the caller
// backs off and retries, or keeps Adding and lets the interval trigger
// retry, without losing elements.
package opaqclient

import (
	"bufio"
	"bytes"
	"cmp"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"opaq/internal/runio"
)

// DefaultMaxBatch is the size trigger when Options.MaxBatch is zero: 8192
// elements keeps a default int64 frame at 64 KiB — large enough to
// amortize the round trip, small enough to stay far under frame and body
// limits.
const DefaultMaxBatch = 8192

// Options configures a Client.
type Options struct {
	// Tenant routes batches on multi-tenant servers. Empty means the
	// server's default tenant.
	Tenant string
	// MaxBatch is the size trigger: a batch flushes as soon as it holds
	// this many elements. 0 means DefaultMaxBatch.
	MaxBatch int
	// FlushInterval, when positive, is the wall-clock trigger: a
	// background goroutine flushes any buffered elements this often, so a
	// slow producer's elements still become queryable promptly. Flush
	// errors other than backpressure are sticky and surface on the next
	// Add/Flush/Close.
	FlushInterval time.Duration
	// HTTPClient overrides the HTTP transport's client (NewHTTP only).
	// nil means http.DefaultClient.
	HTTPClient *http.Client
}

// Backpressure is the error a shed batch returns: the server's unsealed
// backlog is over its bound. The batch remains buffered in the client;
// retry after RetryAfter.
type Backpressure struct {
	// RetryAfter is the server's hint for when the backlog plausibly
	// drained.
	RetryAfter time.Duration
	// Msg is the server's diagnostic.
	Msg string
}

func (b *Backpressure) Error() string {
	return fmt.Sprintf("opaqclient: server backpressure (retry after %v): %s", b.RetryAfter, b.Msg)
}

// transport ships one encoded data frame and returns the server's ack:
// elements acknowledged and the engine's element count. journaled reports
// a coordinator that accepted the batch into its write-ahead journal
// (202 + X-Opaq-Journaled) rather than a live worker — the batch is
// durable and will be replayed, but n is not a read-your-writes
// watermark for it. A shed batch returns a *Backpressure.
type transport interface {
	roundTrip(frame []byte) (acked uint32, n int64, journaled bool, err error)
	close() error
}

// Client batches elements toward one server. All methods are safe for
// concurrent use; batching keeps element order within one goroutine.
type Client[T cmp.Ordered] struct {
	codec       runio.Codec[T]
	tr          transport
	frameTenant string // tenant field inside data frames
	maxBatch    int

	mu        sync.Mutex
	buf       []T
	frame     []byte
	lastN     int64
	journaled int64
	err       error // sticky background-flush error

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// DialTCP connects to a TCP ingest listener (opaq serve -ingest-addr).
// The connection is persistent; Close flushes and hangs it up.
func DialTCP[T cmp.Ordered](addr string, codec runio.Codec[T], opts Options) (*Client[T], error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tr := &tcpTransport{conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}
	// TCP routes by the frame's tenant field.
	return newClient(codec, tr, opts.Tenant, opts), nil
}

// NewHTTP returns a client posting binary batches to baseURL's ingest
// route — POST {baseURL}/ingest, or /t/{tenant}/ingest when
// Options.Tenant is set.
func NewHTTP[T cmp.Ordered](baseURL string, codec runio.Codec[T], opts Options) *Client[T] {
	url := baseURL + "/ingest"
	if opts.Tenant != "" {
		url = baseURL + "/t/" + opts.Tenant + "/ingest"
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	// HTTP routes by URL; the frame tenant stays empty so the same client
	// works against single-engine and registry servers alike.
	return newClient(codec, &httpTransport{url: url, client: hc}, "", opts)
}

func newClient[T cmp.Ordered](codec runio.Codec[T], tr transport, frameTenant string, opts Options) *Client[T] {
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	c := &Client[T]{
		codec:       codec,
		tr:          tr,
		frameTenant: frameTenant,
		maxBatch:    maxBatch,
		buf:         make([]T, 0, maxBatch),
		stop:        make(chan struct{}),
	}
	if opts.FlushInterval > 0 {
		c.wg.Add(1)
		go c.flushLoop(opts.FlushInterval)
	}
	return c
}

// flushLoop is the wall-clock trigger: like the server's EpochPolicy
// interval, it bounds how stale a buffered element can get.
func (c *Client[T]) flushLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			err := c.flushLocked()
			var bp *Backpressure
			if err != nil && !errors.As(err, &bp) {
				// Backpressure heals on a later tick; anything else is
				// surfaced to the producer on its next call.
				c.err = err
			}
			c.mu.Unlock()
		}
	}
}

// Add buffers one element, flushing when the size trigger fires. The
// returned error is the flush's (including *Backpressure, with the
// element still buffered) or a sticky interval-flush failure.
func (c *Client[T]) Add(v T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.takeErr(); err != nil {
		return err
	}
	c.buf = append(c.buf, v)
	if len(c.buf) >= c.maxBatch {
		return c.flushLocked()
	}
	return nil
}

// AddBatch buffers a batch, flushing every MaxBatch elements. On
// backpressure the unflushed remainder stays buffered.
func (c *Client[T]) AddBatch(vs []T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.takeErr(); err != nil {
		return err
	}
	for len(vs) > 0 {
		take := c.maxBatch - len(c.buf)
		if take > len(vs) {
			take = len(vs)
		}
		c.buf = append(c.buf, vs[:take]...)
		vs = vs[take:]
		if len(c.buf) >= c.maxBatch {
			if err := c.flushLocked(); err != nil {
				// Keep the tail too: nothing is dropped on backpressure.
				c.buf = append(c.buf, vs...)
				return err
			}
		}
	}
	return nil
}

// Flush sends any buffered elements now.
func (c *Client[T]) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.takeErr(); err != nil {
		return err
	}
	return c.flushLocked()
}

// N returns the server engine's element count from the last ack — a
// read-your-writes watermark: every element this client flushed
// successfully is included.
func (c *Client[T]) N() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastN
}

// Journaled returns the cumulative count of elements a coordinator
// accepted into its write-ahead journal (202 + X-Opaq-Journaled: true)
// instead of a live worker. Journaled elements are durable and will be
// replayed to the fleet, but they are not yet reflected in N().
func (c *Client[T]) Journaled() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journaled
}

// Buffered returns the number of elements awaiting a flush.
func (c *Client[T]) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Close flushes buffered elements and releases the transport. A
// backpressure shed on this final flush is returned as the *Backpressure
// it is — the caller decides whether to retry with a new client or drop
// the batch.
func (c *Client[T]) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.mu.Lock()
	err := c.takeErr()
	if err == nil {
		err = c.flushLocked()
	}
	c.mu.Unlock()
	if cerr := c.tr.close(); err == nil {
		err = cerr
	}
	return err
}

// takeErr surfaces and clears the sticky interval-flush error.
func (c *Client[T]) takeErr() error {
	err := c.err
	c.err = nil
	return err
}

// flushLocked ships the buffer as one data frame. On success the buffer
// empties; on error (backpressure included) every unacked element stays.
func (c *Client[T]) flushLocked() error {
	if len(c.buf) == 0 {
		return nil
	}
	var err error
	c.frame, err = runio.AppendDataFrame(c.frame[:0], c.codec, c.frameTenant, c.buf)
	if err != nil {
		return err
	}
	acked, n, journaled, err := c.tr.roundTrip(c.frame)
	if int(acked) >= len(c.buf) {
		c.buf = c.buf[:0]
	} else if acked > 0 {
		// Partial acks only occur on multi-frame bodies, which one flush
		// never sends, but honor them defensively: drop what landed, keep
		// the rest buffered for the next flush.
		c.buf = c.buf[:copy(c.buf, c.buf[acked:])]
	}
	if acked > 0 {
		if journaled {
			// A journaled ack means durable-at-the-coordinator, not
			// resident-in-an-engine: count it, but leave the N() watermark
			// to real worker acks.
			c.journaled += int64(acked)
		} else {
			c.lastN = n
		}
	}
	return err
}

// tcpTransport speaks the persistent-connection protocol of engine's
// TCPServer: write a data frame, read one ack or nack frame.
type tcpTransport struct {
	conn    net.Conn
	br      *bufio.Reader
	payload []byte
}

func (t *tcpTransport) roundTrip(frame []byte) (uint32, int64, bool, error) {
	if _, err := t.conn.Write(frame); err != nil {
		return 0, 0, false, err
	}
	h, err := runio.ReadFrameHeader(t.br, 0)
	if err != nil {
		return 0, 0, false, err
	}
	t.payload, err = runio.ReadFramePayload(t.br, h, t.payload)
	if err != nil {
		return 0, 0, false, err
	}
	acked, n, err := decodeResponse(h, t.payload)
	return acked, n, false, err
}

func (t *tcpTransport) close() error { return t.conn.Close() }

// httpTransport posts one frame per request to the binary ingest route
// and decodes the frame-encoded response body.
type httpTransport struct {
	url     string
	client  *http.Client
	payload []byte
}

func (t *httpTransport) roundTrip(frame []byte) (uint32, int64, bool, error) {
	resp, err := t.client.Post(t.url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return 0, 0, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	journaled := resp.Header.Get("X-Opaq-Journaled") == "true"
	h, err := runio.ReadFrameHeader(resp.Body, 0)
	if err != nil {
		// Not a frame body: a JSON error from a non-binary-aware route.
		return 0, 0, false, fmt.Errorf("opaqclient: %s: http %d (no frame body)", t.url, resp.StatusCode)
	}
	t.payload, err = runio.ReadFramePayload(resp.Body, h, t.payload)
	if err != nil {
		return 0, 0, false, err
	}
	acked, n, err := decodeResponse(h, t.payload)
	if err != nil || acked > 0 || h.Type != runio.FrameAck {
		return acked, n, journaled, err
	}
	// The body is ack-then-maybe-nack; a zero ack with a trailing nack
	// carries the real story (backpressure or a protocol rejection).
	if h2, err2 := runio.ReadFrameHeader(resp.Body, 0); err2 == nil {
		t.payload, err2 = runio.ReadFramePayload(resp.Body, h2, t.payload)
		if err2 == nil {
			if _, _, nerr := decodeResponse(h2, t.payload); nerr != nil {
				return acked, n, journaled, nerr
			}
		}
	}
	return acked, n, journaled, nil
}

func (t *httpTransport) close() error { return nil }

// decodeResponse turns a server response frame into the transport result:
// acks yield counts, nacks yield *Backpressure (retry hint present) or a
// plain protocol error.
func decodeResponse(h runio.FrameHeader, payload []byte) (uint32, int64, error) {
	switch h.Type {
	case runio.FrameAck:
		count, n, err := runio.DecodeAckPayload(payload)
		return count, n, err
	case runio.FrameNack:
		retry, msg, err := runio.DecodeNackPayload(payload)
		if err != nil {
			return 0, 0, err
		}
		if retry > 0 {
			return 0, 0, &Backpressure{RetryAfter: time.Duration(retry) * time.Second, Msg: msg}
		}
		return 0, 0, fmt.Errorf("opaqclient: server rejected batch: %s", msg)
	default:
		return 0, 0, fmt.Errorf("opaqclient: unexpected frame type %d in response", h.Type)
	}
}
