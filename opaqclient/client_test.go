package opaqclient

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"opaq/internal/core"
	"opaq/internal/engine"
	"opaq/internal/runio"
)

var testCfg = core.Config{RunLen: 1 << 10, SampleSize: 1 << 5}

func newTestEngine(t testing.TB) *engine.Engine[int64] {
	t.Helper()
	e, err := engine.New[int64](engine.Options{Config: testCfg, Stripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// startHTTP serves the binary-enabled HTTP handler for one engine.
func startHTTP(t *testing.T, e *engine.Engine[int64], opts engine.HandlerOptions) string {
	t.Helper()
	srv := httptest.NewServer(engine.NewHandlerCodec(e, engine.Int64Key, runio.Int64Codec{}, opts))
	t.Cleanup(srv.Close)
	return srv.URL
}

// startTCP serves a TCP ingest listener for one engine.
func startTCP(t *testing.T, e *engine.Engine[int64], opts engine.TCPOptions) string {
	t.Helper()
	srv := engine.NewTCPServer(e, runio.Int64Codec{}, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// TestSizeTrigger: Add flushes exactly on the MaxBatch boundary, over
// both transports, and N() tracks the server's acked element count.
func TestSizeTrigger(t *testing.T) {
	for _, transport := range []string{"http", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			e := newTestEngine(t)
			var c *Client[int64]
			switch transport {
			case "http":
				c = NewHTTP(startHTTP(t, e, engine.HandlerOptions{}), runio.Int64Codec{}, Options{MaxBatch: 10})
			case "tcp":
				var err error
				c, err = DialTCP(startTCP(t, e, engine.TCPOptions{}), runio.Int64Codec{}, Options{MaxBatch: 10})
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 25; i++ {
				if err := c.Add(int64(i)); err != nil {
					t.Fatalf("Add(%d): %v", i, err)
				}
			}
			// Two full batches flushed; five elements await the next trigger.
			if got := c.Buffered(); got != 5 {
				t.Errorf("Buffered() = %d, want 5", got)
			}
			if n := e.N(); n != 20 {
				t.Errorf("server n = %d before explicit flush, want 20", n)
			}
			if got := c.N(); got != 20 {
				t.Errorf("client N() = %d, want 20", got)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if n := e.N(); n != 25 {
				t.Errorf("server n = %d after Close, want 25", n)
			}
			if got := c.N(); got != 25 {
				t.Errorf("client N() = %d after Close, want 25", got)
			}
		})
	}
}

// TestAddBatchChunking: one AddBatch call larger than MaxBatch flushes in
// MaxBatch-sized frames and leaves only the tail buffered.
func TestAddBatchChunking(t *testing.T) {
	e := newTestEngine(t)
	c := NewHTTP(startHTTP(t, e, engine.HandlerOptions{}), runio.Int64Codec{}, Options{MaxBatch: 1000})
	vs := make([]int64, 10_005)
	for i := range vs {
		vs[i] = int64(i)
	}
	if err := c.AddBatch(vs); err != nil {
		t.Fatal(err)
	}
	if got := c.Buffered(); got != 5 {
		t.Errorf("Buffered() = %d, want 5", got)
	}
	if n := e.N(); n != 10_000 {
		t.Errorf("server n = %d, want 10000", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := e.N(); n != 10_005 {
		t.Errorf("server n = %d after Close, want 10005", n)
	}
}

// TestFlushInterval: the wall-clock trigger ships a below-threshold batch
// without any explicit Flush.
func TestFlushInterval(t *testing.T) {
	e := newTestEngine(t)
	c := NewHTTP(startHTTP(t, e, engine.HandlerOptions{}), runio.Int64Codec{}, Options{
		MaxBatch:      1 << 20, // size trigger out of reach
		FlushInterval: 10 * time.Millisecond,
	})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Add(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.N() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never landed: server n = %d", e.N())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Buffered(); got != 0 {
		t.Errorf("Buffered() = %d after interval flush, want 0", got)
	}
}

// TestBackpressureRetainsBuffer: a shed flush surfaces *Backpressure with
// the server's hint, keeps every element buffered, and the same batch
// lands once the backlog heals — nothing dropped, nothing duplicated.
func TestBackpressureRetainsBuffer(t *testing.T) {
	for _, transport := range []string{"http", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			e := newTestEngine(t)
			// A bound below one run: pending bytes from the first batch trip
			// it and no rotation can heal until the run completes.
			var c *Client[int64]
			var err error
			switch transport {
			case "http":
				url := startHTTP(t, e, engine.HandlerOptions{MaxPendingBytes: 512, RetryAfter: 2 * time.Second})
				c = NewHTTP(url, runio.Int64Codec{}, Options{MaxBatch: 100})
			case "tcp":
				addr := startTCP(t, e, engine.TCPOptions{MaxPendingBytes: 512, RetryAfter: 2 * time.Second})
				c, err = DialTCP(addr, runio.Int64Codec{}, Options{MaxBatch: 100})
				if err != nil {
					t.Fatal(err)
				}
			}
			first := make([]int64, 100)
			if err := c.AddBatch(first); err != nil {
				t.Fatalf("first batch: %v", err)
			}
			// 100×8 = 800 pending bytes > 512: the next flush sheds.
			second := make([]int64, 100)
			err = c.AddBatch(second)
			var bp *Backpressure
			if !errors.As(err, &bp) {
				t.Fatalf("second batch: %v, want *Backpressure", err)
			}
			if bp.RetryAfter != 2*time.Second {
				t.Errorf("RetryAfter = %v, want 2s", bp.RetryAfter)
			}
			if got := c.Buffered(); got != 100 {
				t.Errorf("Buffered() = %d after shed, want 100", got)
			}
			if n := e.N(); n != 100 {
				t.Errorf("server n = %d after shed, want 100", n)
			}
			// Heal: complete the run directly and seal it, then retry.
			for i := 0; i < testCfg.RunLen-100; i++ {
				if err := e.Ingest(int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Rotate(); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("post-heal Flush: %v", err)
			}
			if got := c.Buffered(); got != 0 {
				t.Errorf("Buffered() = %d after retry, want 0", got)
			}
			if n := e.N(); n != int64(testCfg.RunLen)+100 {
				t.Errorf("server n = %d, want %d", n, testCfg.RunLen+100)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIntervalBackpressureNotSticky: a shed interval flush is not a
// sticky error — the producer keeps Adding and a later tick retries.
func TestIntervalBackpressureNotSticky(t *testing.T) {
	e := newTestEngine(t)
	url := startHTTP(t, e, engine.HandlerOptions{MaxPendingBytes: 512, RetryAfter: time.Second})
	c := NewHTTP(url, runio.Int64Codec{}, Options{
		MaxBatch:      1 << 20,
		FlushInterval: 10 * time.Millisecond,
	})
	defer c.Close()
	// Fill past the bound so ticks shed.
	big := make([]int64, 100)
	if err := c.AddBatch(big); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.N() != 100 {
		if time.Now().After(deadline) {
			t.Fatalf("first interval flush never landed: n = %d", e.N())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Add(1); err != nil {
		t.Fatal(err)
	}
	// Give the ticker time to shed at least once against the backlog.
	time.Sleep(50 * time.Millisecond)
	if err := c.Add(2); err != nil {
		t.Fatalf("Add after shed ticks: %v (backpressure must not stick)", err)
	}
	// Heal and confirm the buffered elements eventually land.
	for i := 0; i < testCfg.RunLen-100; i++ {
		if err := e.Ingest(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Rotate(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for e.N() != int64(testCfg.RunLen)+2 {
		if time.Now().After(deadline) {
			t.Fatalf("post-heal interval flush never landed: n = %d", e.N())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTenantRouting: Options.Tenant lands elements in the right registry
// tenant over both transports.
func TestTenantRouting(t *testing.T) {
	reg, err := engine.NewRegistry(engine.RegistryOptions[int64]{
		Defaults: engine.Options{Config: testCfg, Stripes: 1},
		Codec:    runio.Int64Codec{}, // enables the handler's binary route
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{engine.DefaultTenant, "lat"} {
		if _, err := reg.Create(name, nil); err != nil {
			t.Fatal(err)
		}
	}

	hsrv := httptest.NewServer(engine.NewRegistryHandler(reg, engine.Int64Key, engine.HandlerOptions{}))
	defer hsrv.Close()
	hc := NewHTTP(hsrv.URL, runio.Int64Codec{}, Options{Tenant: "lat", MaxBatch: 4})
	if err := hc.AddBatch([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	hc.Close()

	tsrv := engine.NewRegistryTCPServer(reg, runio.Int64Codec{}, engine.TCPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tsrv.Serve(ln)
	}()
	defer func() {
		tsrv.Close()
		<-done
	}()
	tc, err := DialTCP(ln.Addr().String(), runio.Int64Codec{}, Options{Tenant: "lat", MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.AddBatch([]int64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	tc.Close()

	lat, err := reg.Get("lat")
	if err != nil {
		t.Fatal(err)
	}
	if n := lat.N(); n != 8 {
		t.Errorf("tenant lat: n = %d, want 8", n)
	}
	def, err := reg.Get(engine.DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if n := def.N(); n != 0 {
		t.Errorf("default tenant: n = %d, want 0 (nothing routed there)", n)
	}
}

// TestProtocolErrorIsPlain: a rejection without a retry hint (wrong codec
// kind) surfaces as a plain error, not *Backpressure.
func TestProtocolErrorIsPlain(t *testing.T) {
	e := newTestEngine(t)
	url := startHTTP(t, e, engine.HandlerOptions{})
	// Client speaks float64 at an int64 server.
	c := NewHTTP(url, runio.Float64Codec{}, Options{MaxBatch: 2})
	err := c.AddBatch([]float64{1, 2})
	if err == nil {
		t.Fatal("mismatched codec kind accepted")
	}
	var bp *Backpressure
	if errors.As(err, &bp) {
		t.Fatalf("protocol rejection surfaced as backpressure: %v", err)
	}
}

// TestJournaledAck: a coordinator that accepts a batch into its
// write-ahead journal answers 202 + X-Opaq-Journaled with an ack frame.
// The client must treat that as a durable flush — buffer emptied, no
// error — but count it under Journaled() instead of advancing the N()
// watermark, which only real worker acks move.
func TestJournaledAck(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, err := runio.ReadFrameHeader(r.Body, 0)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		payload, err := runio.ReadFramePayload(r.Body, h, nil)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		_, elems, err := runio.SplitDataPayload(payload, 8)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		w.Header().Set("X-Opaq-Journaled", "true")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusAccepted)
		w.Write(runio.AppendAckFrame(nil, uint32(len(elems)/8), 0))
	}))
	t.Cleanup(srv.Close)

	c := NewHTTP(srv.URL, runio.Int64Codec{}, Options{MaxBatch: 100})
	if err := c.AddBatch([]int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("journaled flush returned error: %v", err)
	}
	if got := c.Buffered(); got != 0 {
		t.Errorf("Buffered() = %d after journaled ack, want 0", got)
	}
	if got := c.Journaled(); got != 5 {
		t.Errorf("Journaled() = %d, want 5", got)
	}
	if got := c.N(); got != 0 {
		t.Errorf("N() = %d after journal-only acks, want 0", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
