package opaqclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
)

// Query is the read side of the client: quantile, selectivity, stats and
// health queries against any server speaking the opaq HTTP surface — a
// single `opaq serve`, an `opaq worker`, or an `opaq coord` fronting a
// fleet. Against a coordinator, answers may be degraded: Partial is true
// when one of the tenant's workers was down and the answer merges only
// the survivors. Against a single server Partial is always false.
//
// Keys travel as the decimal strings the server formats them with, so
// one Query works for every element type; int64 callers parse bounds
// with strconv.ParseInt.
type Query struct {
	base   string
	tenant string
	hc     *http.Client

	// Summary's conditional-GET cache: the last fetched summary bytes and
	// the ETag that names them. Servers answer 304 when the tag still
	// matches, so a poller pays one headers-only round trip instead of
	// re-downloading (and the coordinator skips re-serializing) an
	// unchanged summary.
	sumMu      sync.Mutex
	sumTag     string
	sumBytes   []byte
	sumPartial bool
}

// NewQuery returns a Query against baseURL (e.g. "http://localhost:8080"
// — an opaq serve, worker, or coordinator address). Options.Tenant
// scopes the tenant routes; Options.HTTPClient overrides the transport.
// The batching fields of Options are ignored.
func NewQuery(baseURL string, opts Options) *Query {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Query{base: baseURL, tenant: opts.Tenant, hc: hc}
}

// QuantileAnswer is one quantile's rank enclosure.
type QuantileAnswer struct {
	Phi      float64 `json:"phi"`
	Rank     int64   `json:"rank"`
	Lower    string  `json:"lower"`
	Upper    string  `json:"upper"`
	MaxBelow int64   `json:"max_below"`
	MaxAbove int64   `json:"max_above"`
	// Partial means a coordinator answered from a strict subset of the
	// tenant's workers: the enclosure covers the surviving data only.
	Partial bool `json:"partial"`
}

// SelectivityAnswer estimates the fraction of elements in a key range.
type SelectivityAnswer struct {
	Selectivity float64 `json:"selectivity"`
	Estimate    float64 `json:"estimate"`
	MaxAbsError float64 `json:"max_abs_error"`
	Partial     bool    `json:"partial"`
}

// StatsAnswer is the tenant's serving state. Owners and Down are
// populated by coordinators only (the workers holding the tenant, and
// the subset currently unreachable).
type StatsAnswer struct {
	N       int64    `json:"n"`
	Samples int      `json:"samples"`
	Owners  []string `json:"owners"`
	Down    []string `json:"down"`
	Partial bool     `json:"partial"`
}

// HealthAnswer is the server's /healthz report. Status is "ok", or
// "degraded" when a coordinator sees unreachable workers. Raw keeps the
// full body (per-tenant stats on workers, per-worker health on
// coordinators) for callers that want the details.
type HealthAnswer struct {
	Status string
	Build  map[string]string
	Raw    map[string]any
}

// tenantPath scopes route under the client's tenant.
func (q *Query) tenantPath(route string) string {
	if q.tenant == "" {
		return q.base + route
	}
	return q.base + "/t/" + url.PathEscape(q.tenant) + route
}

// getJSON decodes a 200 response into out; any other status becomes an
// error carrying the server's body.
func (q *Query) getJSON(url string, out any) error {
	resp, err := q.hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("opaqclient: %s: http %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

// Quantile asks for the phi-quantile's enclosure.
func (q *Query) Quantile(phi float64) (QuantileAnswer, error) {
	var out QuantileAnswer
	err := q.getJSON(q.tenantPath("/quantile?phi="+strconv.FormatFloat(phi, 'g', -1, 64)), &out)
	return out, err
}

// Selectivity estimates the fraction of elements in [a, b], both bounds
// as decimal key strings.
func (q *Query) Selectivity(a, b string) (SelectivityAnswer, error) {
	var out SelectivityAnswer
	err := q.getJSON(q.tenantPath("/selectivity?a="+url.QueryEscape(a)+"&b="+url.QueryEscape(b)), &out)
	return out, err
}

// Stats reports the tenant's element count and serving state.
func (q *Query) Stats() (StatsAnswer, error) {
	var out StatsAnswer
	err := q.getJSON(q.tenantPath("/stats"), &out)
	return out, err
}

// Healthz reports server (or, on a coordinator, fleet) health.
func (q *Query) Healthz() (HealthAnswer, error) {
	var raw map[string]any
	if err := q.getJSON(q.base+"/healthz", &raw); err != nil {
		return HealthAnswer{}, err
	}
	out := HealthAnswer{Raw: raw, Build: map[string]string{}}
	out.Status, _ = raw["status"].(string)
	if b, ok := raw["build"].(map[string]any); ok {
		for k, v := range b {
			if s, ok := v.(string); ok {
				out.Build[k] = s
			}
		}
	}
	return out, nil
}

// SummaryAnswer is the tenant's merged summary in the portable
// checksummed core.SaveSummary byte format — loadable with
// core.LoadSummary for offline analysis or warm-starting another engine.
type SummaryAnswer struct {
	// Bytes is the serialized summary. It is shared with the client's
	// cache; treat it as read-only.
	Bytes []byte
	// Partial mirrors the X-Opaq-Partial header: a coordinator built
	// this summary from a strict subset of the tenant's workers.
	Partial bool
	// Cached reports that the server answered 304 Not Modified and
	// Bytes came from the client-side cache unchanged.
	Cached bool
}

// Summary fetches the tenant's summary bytes with a conditional GET:
// after the first fetch the server's ETag is remembered, and an
// unchanged summary costs a headers-only 304 round trip. Safe for
// concurrent use.
func (q *Query) Summary() (SummaryAnswer, error) {
	q.sumMu.Lock()
	tag := q.sumTag
	q.sumMu.Unlock()
	req, err := http.NewRequest(http.MethodGet, q.tenantPath("/summary"), nil)
	if err != nil {
		return SummaryAnswer{}, err
	}
	if tag != "" {
		req.Header.Set("If-None-Match", tag)
	}
	resp, err := q.hc.Do(req)
	if err != nil {
		return SummaryAnswer{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		q.sumMu.Lock()
		defer q.sumMu.Unlock()
		if q.sumBytes == nil {
			return SummaryAnswer{}, fmt.Errorf("opaqclient: 304 with no cached summary")
		}
		// If a concurrent fetch replaced the entry since the tag was
		// snapshotted, its bytes are at least as fresh as this 304.
		return SummaryAnswer{Bytes: q.sumBytes, Partial: q.sumPartial, Cached: true}, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil {
			return SummaryAnswer{}, err
		}
		partial := resp.Header.Get("X-Opaq-Partial") == "true"
		if etag := resp.Header.Get("ETag"); etag != "" {
			q.sumMu.Lock()
			q.sumTag, q.sumBytes, q.sumPartial = etag, body, partial
			q.sumMu.Unlock()
		}
		return SummaryAnswer{Bytes: body, Partial: partial}, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return SummaryAnswer{}, fmt.Errorf("opaqclient: %s: http %d: %s",
			req.URL, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// EnsureTenant creates the client's tenant (the server's default tenant
// when Options.Tenant was empty), succeeding if it already exists — the
// idempotent "make sure I can ingest" call. On a coordinator this places
// the tenant on its ring owners.
func (q *Query) EnsureTenant() error {
	name := q.tenant
	if name == "" {
		name = "default"
	}
	body, err := json.Marshal(map[string]string{"name": name})
	if err != nil {
		return err
	}
	resp, err := q.hc.Post(q.base+"/admin/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusCreated, http.StatusConflict:
		return nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("opaqclient: create tenant %q: http %d: %s",
			name, resp.StatusCode, bytes.TrimSpace(msg))
	}
}
