// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B benchmark per experiment; see DESIGN.md §4 for the index)
// plus micro-benchmarks of the core one-pass machinery.
//
// Experiment benchmarks run at 1/benchScale of the paper's dataset sizes
// so `go test -bench=.` finishes in minutes; `go run ./cmd/benchtab -scale 1`
// reruns everything at paper scale. The reported tables are printed once
// per benchmark (they are the artifact; the ns/op is incidental).
package opaq_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"opaq"
	"opaq/internal/datagen"
	"opaq/internal/experiments"
)

// benchScale divides paper dataset sizes inside the experiment benchmarks.
const benchScale = 20

// benchVerbose prints the regenerated tables when set (OPAQ_BENCH_PRINT=1).
var benchVerbose = os.Getenv("OPAQ_BENCH_PRINT") != ""

func runExperiment(b *testing.B, name string) {
	b.Helper()
	fn := experiments.All()[name]
	if fn == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := fn(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if benchVerbose && i == 0 {
			tbl.Format(os.Stdout)
		} else {
			tbl.Format(io.Discard)
		}
	}
}

func BenchmarkTable3(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { runExperiment(b, "table7") }
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "figure3") }
func BenchmarkTable9(b *testing.B)  { runExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { runExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B) { runExperiment(b, "table12") }
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "figure5") }
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "figure6") }

// ---- Micro-benchmarks of the public API ----

// BenchmarkBuildSummary measures one-pass summary construction throughput
// (elements/op is the figure of merit: the paper's Table 2 promises
// O(n log s) total work).
func BenchmarkBuildSummary(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		for _, s := range []int{256, 1024} {
			b.Run(fmt.Sprintf("n=%d/s=%d", n, s), func(b *testing.B) {
				xs := datagen.Generate(datagen.NewUniform(1, 1<<62), n)
				cfg := opaq.Config{RunLen: n / 8 / s * s, SampleSize: s} // ~8 runs, s | m
				b.SetBytes(int64(n) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opaq.BuildFromSlice(xs, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBuildWorkers sweeps Config.Workers over a disk-resident run
// file, making the speedup of the concurrent sample-phase pipeline (and
// its bit-identical output) visible in the perf trajectory. Workers=1 is
// the sequential baseline; higher counts overlap prefetching I/O with
// concurrent multi-selection.
func BenchmarkBuildWorkers(b *testing.B) {
	const n = 2_000_000
	path := filepath.Join(b.TempDir(), "bench.run")
	gen := datagen.NewUniform(1, 1<<62)
	if err := opaq.WriteInt64FileFunc(path, n, func(int64) int64 { return gen.Next() }); err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := opaq.Config{RunLen: 1 << 16, SampleSize: 1 << 10, Workers: w}
			b.SetBytes(n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := opaq.OpenInt64File(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := opaq.BuildFromDataset(ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuantileQuery measures the O(1)-per-quantile claim: answering a
// quantile from an existing summary.
func BenchmarkQuantileQuery(b *testing.B) {
	xs := datagen.Generate(datagen.NewUniform(1, 1<<62), 1_000_000)
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 125_000, SampleSize: 1000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := float64(i%999+1) / 1000
		if _, err := sum.Bounds(phi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeSummaries measures incremental maintenance cost.
func BenchmarkMergeSummaries(b *testing.B) {
	xs := datagen.Generate(datagen.NewUniform(1, 1<<62), 200_000)
	cfg := opaq.Config{RunLen: 10_000, SampleSize: 1000}
	s1, err := opaq.BuildFromSlice(xs[:100_000], cfg)
	if err != nil {
		b.Fatal(err)
	}
	s2, err := opaq.BuildFromSlice(xs[100_000:], cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opaq.Merge(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankBounds measures arbitrary-key rank estimation.
func BenchmarkRankBounds(b *testing.B) {
	xs := datagen.Generate(datagen.NewUniform(1, 1<<62), 1_000_000)
	sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 125_000, SampleSize: 1000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.RankBounds(int64(i) * 7919)
	}
}

// BenchmarkBuildSharded measures the sharded engine (real transport) over
// fixed total data as the shard count grows; per-shard Workers is pinned
// to 1 so the subject is sharding itself.
func BenchmarkBuildSharded(b *testing.B) {
	const n, runLen = 2_000_000, 1 << 16
	gen := datagen.NewUniform(3, 1<<62)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = gen.Next()
	}
	cfg := opaq.Config{RunLen: runLen, SampleSize: 1 << 10, Workers: 1}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pieces, err := opaq.ShardSlices(xs, shards, runLen)
			if err != nil {
				b.Fatal(err)
			}
			datasets := make([]opaq.Dataset[int64], len(pieces))
			for i, p := range pieces {
				datasets[i] = opaq.NewMemoryDataset(p, 8)
			}
			b.SetBytes(n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opaq.BuildSharded(datasets, cfg, opaq.ShardOptions{Merge: opaq.SampleMerge}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
