package opaq

import (
	"cmp"

	"opaq/internal/parallel"
	"opaq/internal/runio"
)

// ShardOptions configures a sharded build; see parallel.ShardOptions.
type ShardOptions = parallel.ShardOptions

// TransportKind selects the machine a sharded build runs on; see
// parallel.TransportKind.
type TransportKind = parallel.TransportKind

// Transport kinds for ShardOptions.Transport.
const (
	// TransportInProcess runs ranks as goroutines in this process.
	TransportInProcess = parallel.TransportInProcess
	// TransportTCP runs ranks over a loopback TCP mesh speaking the runio
	// frame protocol — real serialization and sockets on every exchange.
	TransportTCP = parallel.TransportTCP
)

// BuildSharded runs the sample phase over the per-shard datasets
// concurrently — one engine rank per dataset, connected by the real
// in-process transport — and merges the per-shard sample lists into one
// global Summary with opts.Merge (SampleMerge for any shard count,
// BitonicMerge for powers of two). Each shard's local phase is the full
// build pipeline, so cfg.Workers applies per shard and shards may be
// disk-resident run files.
//
// When every shard but the last holds a whole number of runs
// (Count % cfg.RunLen == 0), the result is bit-identical to a sequential
// Build over the concatenation of the shards — the deterministic-sharding
// guarantee the engine is tested on. See parallel.BuildSharded.
func BuildSharded[T cmp.Ordered](datasets []Dataset[T], cfg Config, opts ShardOptions) (*Summary[T], error) {
	return parallel.BuildSharded(datasets, cfg, opts)
}

// BuildShardedFromSlice is BuildSharded over an in-memory slice: the slice
// is cut into opts.Shards run-aligned contiguous pieces (MemoryShards), so
// the result is bit-identical to BuildFromSlice(xs, cfg) for every shard
// count. Intended for tests, examples and moderate inputs; large inputs
// should shard into run files and use BuildSharded directly.
func BuildShardedFromSlice[T cmp.Ordered](xs []T, cfg Config, opts ShardOptions) (*Summary[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	datasets, err := MemoryShards(xs, max(opts.Shards, 1), cfg.RunLen)
	if err != nil {
		return nil, err
	}
	opts.Shards = len(datasets)
	return BuildSharded(datasets, cfg, opts)
}

// MemoryShards cuts xs into run-aligned contiguous shards (ShardSlices) and
// wraps each as an in-memory Dataset whose modeled I/O accounting charges
// the element type's real width — a float32 shard is modeled at 4 bytes per
// element, not 8. This is the dataset layout BuildShardedFromSlice builds
// over, exposed so callers can inspect per-shard Stats.
func MemoryShards[T any](xs []T, shards, runLen int) ([]Dataset[T], error) {
	pieces, err := ShardSlices(xs, shards, runLen)
	if err != nil {
		return nil, err
	}
	datasets := make([]Dataset[T], len(pieces))
	for i, sh := range pieces {
		datasets[i] = runio.NewMemoryDataset(sh, runio.ElemSize[T]())
	}
	return datasets, nil
}

// ShardSlices cuts xs into run-aligned contiguous shards suitable for a
// bit-deterministic sharded build; see parallel.ShardSlices.
func ShardSlices[T any](xs []T, shards, runLen int) ([][]T, error) {
	return parallel.ShardSlices(xs, shards, runLen)
}

// ShardFile splits the run file at path into `shards` run-aligned section
// datasets without materializing it: each section scans its own element
// range of the file (one seek plus a sequential read). Feed the result to
// BuildSharded for a sharded build over a single large file whose summary
// is bit-identical to the sequential build's, in O(shards · RunLen)
// memory.
func ShardFile[T any](path string, codec Codec[T], shards, runLen int) ([]Dataset[T], error) {
	fd, err := runio.OpenFile(path, codec)
	if err != nil {
		return nil, err
	}
	sections, err := fd.Sections(shards, runLen)
	if err != nil {
		return nil, err
	}
	out := make([]Dataset[T], len(sections))
	for i, s := range sections {
		out[i] = s
	}
	return out, nil
}
