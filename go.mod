module opaq

go 1.24
