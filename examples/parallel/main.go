// Parallel: run OPAQ's parallel formulation on the simulated
// message-passing machine (the paper's Section 3 on a modeled IBM SP-2).
// Shows the per-phase time breakdown of Table 12, the bitonic-vs-sample
// merge trade-off of Figure 3, and near-linear speedup (Figure 6) — all in
// simulated time, with the actual quantile bounds computed for real.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"

	"opaq"
)

func main() {
	// 8 processors × 512K keys each: every processor owns a shard on its
	// local (simulated) disk.
	const p, perProc = 8, 512_000
	shards := make([][]int64, p)
	for i := range shards {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		sh := make([]int64, perProc)
		for j := range sh {
			sh[j] = rng.Int63n(1 << 50)
		}
		shards[i] = sh
	}

	cfg := opaq.ParallelConfig{
		Core:  opaq.Config{RunLen: 128_000, SampleSize: 1000},
		Procs: p,
		Merge: opaq.SampleMerge,
		Model: opaq.DefaultCostModel(),
		Disk:  opaq.DefaultDiskModel(),
	}
	res, err := opaq.ParallelRun(shards, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("parallel OPAQ: p=%d, %d keys total, simulated time %.2fs\n\n",
		p, res.Summary.N(), res.TotalTime.Seconds())
	total := float64(res.Phases.Total())
	fmt.Println("phase breakdown (max over processors, fractions of phase total):")
	fmt.Printf("  I/O          %6.1f%%\n", float64(res.Phases.IO)/total*100)
	fmt.Printf("  sampling     %6.1f%%\n", float64(res.Phases.Sampling)/total*100)
	fmt.Printf("  local merge  %6.1f%%\n", float64(res.Phases.LocalMerge)/total*100)
	fmt.Printf("  global merge %6.1f%%\n", float64(res.Phases.GlobalMerge)/total*100)

	fmt.Println("\ndectile bounds from the distributed sample list:")
	bounds, err := res.Summary.Quantiles(10)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range bounds {
		fmt.Printf("  phi=%.1f  [%d, %d]\n", b.Phi, b.Lower, b.Upper)
	}

	// Speedup: same total data, varying machine size.
	fmt.Println("\nspeedup at fixed total size (sample merge):")
	var all []int64
	for _, sh := range shards {
		all = append(all, sh...)
	}
	var t1 float64
	for _, procs := range []int{1, 2, 4, 8} {
		per := len(all) / procs
		shp := make([][]int64, procs)
		for i := range shp {
			shp[i] = all[i*per : (i+1)*per]
		}
		c := cfg
		c.Procs = procs
		r, err := opaq.ParallelRun(shp, c)
		if err != nil {
			log.Fatal(err)
		}
		if procs == 1 {
			t1 = r.TotalTime.Seconds()
		}
		fmt.Printf("  p=%-2d  %6.2fs  speedup %.2f\n", procs, r.TotalTime.Seconds(), t1/r.TotalTime.Seconds())
	}
}
