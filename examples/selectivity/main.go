// Selectivity: the query-optimizer application from the paper's
// introduction. Build an equi-depth histogram from one OPAQ pass over a
// skewed attribute and estimate the selectivity of range predicates —
// where equi-width histograms fail badly under skew, equi-depth boundaries
// from quantiles stay accurate.
//
// Run with: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"
	"sort"

	"opaq"
)

func main() {
	// A Zipf-skewed attribute, e.g. product_id in an orders table: a few
	// hot products dominate. 1M rows, paper's skew parameter 0.86.
	const n = 1_000_000
	gen, err := opaq.NewZipfGenerator(7, 100_000, 0.86)
	if err != nil {
		log.Fatal(err)
	}
	attr := make([]int64, n)
	for i := range attr {
		attr[i] = gen.Next()
	}

	// One pass → summary → 20-bucket equi-depth histogram.
	sum, err := opaq.BuildFromSlice(attr, opaq.Config{RunLen: 125_000, SampleSize: 1000})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := opaq.BuildHistogram(sum, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20-bucket equi-depth histogram over %d rows; boundary slack ≤ %d ranks, range-estimate ceiling ±%.0f rows\n\n",
		sum.N(), hist.SlackRanks(), hist.MaxRangeError())

	// Evaluate range predicates "WHERE attr BETWEEN a AND b" against truth.
	sorted := append([]int64(nil), attr...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	trueCount := func(a, b int64) int {
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= a })
		hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b })
		return hi - lo
	}

	preds := [][2]int64{
		{0, 1 << 59},                    // wide scan
		{1 << 60, 1 << 61},              // mid-range
		{sorted[n/2], sorted[n/2+n/10]}, // narrow band around the median
		{sorted[n-n/100], sorted[n-1]},  // top 1%
	}
	fmt.Printf("%-14s %-14s %12s %12s %9s\n", "a", "b", "estimated", "true", "err(rows)")
	for _, p := range preds {
		est := hist.EstimateRange(p[0], p[1])
		truth := trueCount(p[0], p[1])
		fmt.Printf("%-14d %-14d %12.0f %12d %9.0f\n", p[0], p[1], est, truth, est-float64(truth))
	}
	fmt.Println("\nevery error is within the deterministic ceiling — usable for cost-based planning")
}
