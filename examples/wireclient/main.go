// Wireclient: push elements into a running `opaq serve` over the binary
// ingest path — HTTP (application/octet-stream frames on POST /ingest)
// and/or the persistent-connection TCP listener (-ingest-addr) — using
// the opaqclient batching client. CI's serve smoke uses it to prove both
// transports end to end; it doubles as the opaqclient usage example.
//
// Run with:
//
//	go run ./examples/wireclient -http http://localhost:8080 -n 10000
//	go run ./examples/wireclient -tcp localhost:9090 -tenant latency -n 10000
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"opaq"
	"opaq/opaqclient"
)

func main() {
	var (
		httpBase = flag.String("http", "", "base URL of an opaq serve HTTP API (e.g. http://localhost:8080); empty skips HTTP")
		tcpAddr  = flag.String("tcp", "", "address of an opaq serve -ingest-addr TCP listener; empty skips TCP")
		tenant   = flag.String("tenant", "", "tenant to ingest into (empty = default tenant)")
		n        = flag.Int("n", 10_000, "elements to push per transport")
		batch    = flag.Int("batch", 4096, "client batch size (flush trigger)")
		seed     = flag.Int64("seed", 42, "RNG seed for the pushed elements")
	)
	flag.Parse()
	if *httpBase == "" && *tcpAddr == "" {
		log.Fatal("nothing to do: pass -http and/or -tcp")
	}
	opts := opaqclient.Options{Tenant: *tenant, MaxBatch: *batch}
	codec := opaq.Int64Codec{}

	if *httpBase != "" {
		c := opaqclient.NewHTTP(*httpBase, codec, opts)
		push(c, "http", *n, *seed)
	}
	if *tcpAddr != "" {
		c, err := opaqclient.DialTCP(*tcpAddr, codec, opts)
		if err != nil {
			log.Fatalf("tcp: dial %s: %v", *tcpAddr, err)
		}
		push(c, "tcp", *n, *seed)
	}
}

// push streams n pseudo-latencies through one client, retrying on server
// backpressure with the server's own hint.
func push(c *opaqclient.Client[int64], label string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < n; i++ {
		v := int64(2000 + rng.ExpFloat64()*1500)
		for {
			err := c.Add(v)
			if err == nil {
				break
			}
			var bp *opaqclient.Backpressure
			if errors.As(err, &bp) {
				log.Printf("%s: backpressure, retrying in %v", label, bp.RetryAfter)
				time.Sleep(bp.RetryAfter)
				continue
			}
			log.Fatalf("%s: add: %v", label, err)
		}
	}
	if err := c.Close(); err != nil {
		var bp *opaqclient.Backpressure
		if errors.As(err, &bp) {
			log.Fatalf("%s: final flush shed by server: %v", label, err)
		}
		log.Fatalf("%s: close: %v", label, err)
	}
	fmt.Printf("%s: pushed %d elements in %v; server n=%d\n", label, n, time.Since(start).Round(time.Millisecond), c.N())
}
