// External sort: the paper's external-sorting application. A run file that
// does not fit the configured memory budget is sorted in three passes:
// one OPAQ pass to learn splitters, one scatter pass into buckets that each
// fit in memory (Lemma 1 bounds every bucket's size), and one pass sorting
// and concatenating the buckets.
//
// Run with: go run ./examples/extsort
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"opaq"
)

func main() {
	dir, err := os.MkdirTemp("", "opaq-extsort")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	in := filepath.Join(dir, "unsorted.run")
	out := filepath.Join(dir, "sorted.run")

	// 4M uniform keys on disk (~32 MB), streamed out without ever holding
	// them all in memory.
	const n = 4_000_000
	rng := rand.New(rand.NewSource(9))
	if err := opaq.WriteInt64FileFunc(in, n, func(int64) int64 { return rng.Int63() }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d keys to %s\n", n, in)

	// Memory budget: ~512K elements. 16 buckets of ≈250K each fit easily;
	// s = 1024 ≥ 2·16 keeps the Lemma 1 balance guarantee. Workers: 0 runs
	// the splitter-learning OPAQ pass concurrently across all cores.
	stats, err := opaq.ExternalSort(in, out, opaq.SortOptions{
		Buckets: 16,
		Config:  opaq.Config{RunLen: 1 << 19, SampleSize: 1 << 10, Workers: 0},
		TempDir: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted into %s via %d partitions\n", out, len(stats.BucketSizes))
	fmt.Printf("partition balance: ideal %d, max %d (imbalance %.3f; guarantee ≈ 1 + k/s = %.3f)\n",
		n/len(stats.BucketSizes), stats.MaxBucket, stats.Imbalance(),
		1+float64(len(stats.BucketSizes))/1024)

	// Verify: the output file is sorted and complete, scanning run by run.
	ds, err := opaq.OpenInt64File(out)
	if err != nil {
		log.Fatal(err)
	}
	if ds.Count() != n {
		log.Fatalf("output has %d keys, want %d", ds.Count(), n)
	}
	rr, err := ds.Runs(1 << 18)
	if err != nil {
		log.Fatal(err)
	}
	defer rr.Close()
	var prev int64
	seen := int64(0)
	for {
		run, err := rr.NextRun()
		if err != nil {
			break // io.EOF after the final run
		}
		for _, v := range run {
			if seen > 0 && v < prev {
				log.Fatalf("output not sorted at element %d: %d < %d", seen, v, prev)
			}
			prev = v
			seen++
		}
	}
	fmt.Printf("verified: scanned %d keys in sorted order\n", seen)

	// The same machinery is generic over key codecs: sort a float64 run
	// file with the identical three-pass plan.
	fin := filepath.Join(dir, "unsorted-f64.run")
	fout := filepath.Join(dir, "sorted-f64.run")
	if err := opaq.WriteFileFunc(fin, opaq.Float64Codec{}, 500_000, func(int64) float64 { return rng.NormFloat64() }); err != nil {
		log.Fatal(err)
	}
	fstats, err := opaq.Sort(fin, fout, opaq.Float64Codec{}, opaq.SortOptions{
		Buckets: 8,
		Config:  opaq.Config{RunLen: 1 << 17, SampleSize: 1 << 10},
		TempDir: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic path: sorted %d float64 keys via %d partitions (imbalance %.3f)\n",
		fstats.N, len(fstats.BucketSizes), fstats.Imbalance())
}
