// Serve: the live quantile service end to end, in one process — an
// opaq.Engine behind its HTTP/JSON API, concurrent writers streaming keys
// in while readers query quantiles and range selectivity, and a
// checkpoint → restore cycle proving the state survives restarts. This is
// the equi-depth-histogram serving story the paper's introduction
// motivates: optimizer statistics that stay fresh while data arrives.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"

	"opaq"
)

func main() {
	cfg := opaq.Config{RunLen: 1 << 12, SampleSize: 1 << 8}
	eng, err := opaq.NewEngine[int64](opaq.EngineOptions{Config: cfg, Stripes: 4, Buckets: 20})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(opaq.NewEngineHandler(eng, opaq.ParseInt64Key))
	defer srv.Close()
	fmt.Printf("live quantile service on %s\n\n", srv.URL)

	// Four concurrent writers stream 100k keys each over HTTP while the
	// engine serves. Each burst is one POST /ingest.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for burst := 0; burst < 100; burst++ {
				keys := make([]int64, 1000)
				for i := range keys {
					keys[i] = rng.Int63n(1_000_000)
				}
				body, _ := json.Marshal(map[string]any{"keys": keys})
				resp, err := http.Post(srv.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
			}
		}(w)
	}

	// A reader polls the median while ingestion is in flight: every answer
	// is a deterministic enclosure over everything absorbed at that point.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < 5; i++ {
			var q struct {
				Rank  int64  `json:"rank"`
				Lower string `json:"lower"`
				Upper string `json:"upper"`
			}
			if code := getJSON(srv.URL+"/quantile?phi=0.5", &q); code == http.StatusOK {
				fmt.Printf("  mid-flight median: rank %8d in [%s, %s]\n", q.Rank, q.Lower, q.Upper)
			}
		}
	}()
	wg.Wait()
	<-readDone

	// Quiesced: dectiles, selectivity and stats from the final snapshot.
	var stats map[string]any
	getJSON(srv.URL+"/stats", &stats)
	fmt.Printf("\nfinal state: n=%v, %v snapshot samples, %v merges for %v queries\n",
		stats["n"], stats["snapshot_samples"], stats["merges"], stats["queries"])
	var sel struct {
		Selectivity float64 `json:"selectivity"`
		MaxAbsError float64 `json:"max_abs_error"`
	}
	getJSON(srv.URL+"/selectivity?a=250000&b=749999", &sel)
	fmt.Printf("selectivity of [250000, 749999]: %.4f (true 0.5, error ceiling ±%.0f elements)\n",
		sel.Selectivity, sel.MaxAbsError)

	// Checkpoint, restore into a fresh engine, and keep serving.
	path := filepath.Join(".", "serve-checkpoint.sum")
	if err := eng.CheckpointFile(path, opaq.Int64Codec{}); err != nil {
		log.Fatal(err)
	}
	restored, err := opaq.NewEngine[int64](opaq.EngineOptions{Config: cfg, Stripes: 4, Buckets: 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.RestoreFile(path, opaq.Int64Codec{}); err != nil {
		log.Fatal(err)
	}
	b, err := restored.Quantile(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after checkpoint → restore: n=%d, 0.9-quantile in [%d, %d]\n", restored.N(), b.Lower, b.Upper)
}

// getJSON decodes one GET response into out, returning the status code.
func getJSON(url string, out any) int {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode
}
