// Sharded: build one quantile summary from many shards concurrently with
// the real (non-simulated) sharded engine — the paper's Section 3 parallel
// formulation running on goroutines and channels instead of a modeled
// IBM SP-2. Each shard runs the full local sample phase; the per-shard
// sample lists are merged globally by PSRS-style splitter merging (or a
// bitonic network for power-of-two shard counts); and the result is
// bit-identical to a sequential build over all the data — which this
// program verifies, along with the wall-clock speedup.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"opaq"
)

func main() {
	// 4M keys total, as if arriving pre-sharded (one dataset per node,
	// table partition, Kafka partition, ...).
	const n, runLen = 4_000_000, 1 << 16
	cfg := opaq.Config{RunLen: runLen, SampleSize: 1 << 10, Workers: 1}
	rng := rand.New(rand.NewSource(7))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Int63n(1 << 50)
	}

	// Sequential reference build.
	start := time.Now()
	seq, err := opaq.BuildFromSlice(xs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)
	fmt.Printf("sequential build:            %8v\n", seqTime.Round(time.Millisecond))

	for _, shards := range []int{2, 4, 8} {
		pieces, err := opaq.ShardSlices(xs, shards, runLen)
		if err != nil {
			log.Fatal(err)
		}
		datasets := make([]opaq.Dataset[int64], len(pieces))
		for i, p := range pieces {
			datasets[i] = opaq.NewMemoryDataset(p, 8)
		}
		start = time.Now()
		sum, err := opaq.BuildSharded(datasets, cfg, opaq.ShardOptions{Merge: opaq.SampleMerge})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("sharded build (%d shards):    %8v  speedup %.2fx  identical=%v\n",
			shards, elapsed.Round(time.Millisecond),
			float64(seqTime)/float64(elapsed), identical(seq, sum))
	}

	// The summary serves quantiles exactly like a sequential one.
	fmt.Println("\ndectile bounds from the sharded summary (8 shards, bitonic merge):")
	sum, err := opaq.BuildShardedFromSlice(xs, cfg, opaq.ShardOptions{Shards: 8, Merge: opaq.BitonicMerge})
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := sum.Quantiles(10)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range bounds {
		fmt.Printf("  phi=%.1f  [%d, %d]  (≤%d elements to truth)\n", b.Phi, b.Lower, b.Upper, b.MaxBelow)
	}
}

// identical checks the bit-level determinism guarantee.
func identical(a, b *opaq.Summary[int64]) bool {
	pa, pb := a.Parts(), b.Parts()
	if pa.N != pb.N || pa.Runs != pb.Runs || pa.Step != pb.Step ||
		pa.Leftover != pb.Leftover || pa.Min != pb.Min || pa.Max != pb.Max ||
		len(pa.Samples) != len(pb.Samples) {
		return false
	}
	for i := range pa.Samples {
		if pa.Samples[i] != pb.Samples[i] {
			return false
		}
	}
	return true
}
