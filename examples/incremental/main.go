// Incremental: maintain quantiles as new data arrives, without rescanning
// old data (the paper's Section 4: "if the sorted samples are kept from
// the runs of the old data, one need only compute the sorted samples from
// the new runs and merge with the old sorted samples").
//
// Simulates a week of daily ingest batches: each day, only the new batch
// is scanned; the running summary answers quantiles over everything seen.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"opaq"
)

func main() {
	cfg := opaq.Config{RunLen: 50_000, SampleSize: 500}

	// The running summary starts empty.
	running, err := opaq.BuildFromSlice[int64](nil, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("day  batch      total       p50 enclosure              p99 enclosure")
	rng := rand.New(rand.NewSource(2026))
	for day := 1; day <= 7; day++ {
		// Each day's batch drifts upward: a latency regression creeping in.
		batch := make([]int64, 400_000)
		drift := int64(day * 2_000)
		for i := range batch {
			batch[i] = rng.Int63n(100_000) + drift
		}

		// One pass over the new batch only.
		daily, err := opaq.BuildFromSlice(batch, cfg)
		if err != nil {
			log.Fatal(err)
		}
		running, err = opaq.Merge(running, daily)
		if err != nil {
			log.Fatal(err)
		}

		p50, err := running.Bounds(0.50)
		if err != nil {
			log.Fatal(err)
		}
		p99, err := running.Bounds(0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10d %-11d [%6d, %6d]           [%6d, %6d]\n",
			day, len(batch), running.N(), p50.Lower, p50.Upper, p99.Lower, p99.Upper)
	}

	fmt.Printf("\nafter 7 days: %d runs merged, %d samples held, error ≤ %d elements per bound\n",
		running.Runs(), running.SampleCount(), running.ErrorBound())
	fmt.Println("no old data was ever rescanned — each batch was read exactly once")
}
