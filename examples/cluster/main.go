// Cluster: drive the distributed tier end to end through one
// coordinator — ensure a tenant exists (placing it on the ring), push
// elements over the binary ingest path (the coordinator proxies frames
// to the owning workers), then read back quantiles, selectivity, stats
// and fleet health. CI's multi-process smoke uses it against 2 workers
// + 1 coordinator; it doubles as the opaqclient Query usage example.
//
// Run with:
//
//	opaq worker -addr :9001 -checkpoint-dir /tmp/w1 &
//	opaq worker -addr :9002 -checkpoint-dir /tmp/w2 &
//	opaq coord  -addr :8080 -workers http://localhost:9001,http://localhost:9002 -spread 2 &
//	go run ./examples/cluster -coord http://localhost:8080 -tenant latency -n 100000
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"opaq"
	"opaq/opaqclient"
)

func main() {
	var (
		coord  = flag.String("coord", "http://localhost:8080", "coordinator (or single-server) base URL")
		tenant = flag.String("tenant", "latency", "tenant to create and ingest into")
		n      = flag.Int("n", 100_000, "elements to push")
		batch  = flag.Int("batch", 4096, "client batch size (flush trigger)")
		seed   = flag.Int64("seed", 42, "RNG seed for the pushed elements")
	)
	flag.Parse()

	opts := opaqclient.Options{Tenant: *tenant, MaxBatch: *batch}
	q := opaqclient.NewQuery(*coord, opts)
	if err := q.EnsureTenant(); err != nil {
		log.Fatalf("ensure tenant: %v", err)
	}

	// The write side is the same batching client as against a single
	// server: the coordinator relays each binary frame to an owning
	// worker, failing over if one is down.
	c := opaqclient.NewHTTP(*coord, opaq.Int64Codec{}, opts)
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	for i := 0; i < *n; i++ {
		v := int64(2000 + rng.ExpFloat64()*1500)
		for {
			err := c.Add(v)
			if err == nil {
				break
			}
			var bp *opaqclient.Backpressure
			if errors.As(err, &bp) {
				log.Printf("backpressure, retrying in %v", bp.RetryAfter)
				time.Sleep(bp.RetryAfter)
				continue
			}
			log.Fatalf("add: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Printf("pushed %d elements in %v; server n=%d\n",
		*n, time.Since(start).Round(time.Millisecond), c.N())

	st, err := q.Stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	fmt.Printf("stats: n=%d samples=%d owners=%v down=%v partial=%v\n",
		st.N, st.Samples, st.Owners, st.Down, st.Partial)

	for _, phi := range []float64{0.5, 0.95, 0.99} {
		qa, err := q.Quantile(phi)
		if err != nil {
			log.Fatalf("quantile %g: %v", phi, err)
		}
		fmt.Printf("p%-4g ∈ [%s, %s] (rank %d, partial=%v)\n",
			phi*100, qa.Lower, qa.Upper, qa.Rank, qa.Partial)
	}

	// Fraction of latencies in [2ms, 5ms], bounds as decimal key strings.
	sel, err := q.Selectivity(strconv.Itoa(2000), strconv.Itoa(5000))
	if err != nil {
		log.Fatalf("selectivity: %v", err)
	}
	fmt.Printf("selectivity[2000,5000] = %.4f ±%.0f (partial=%v)\n",
		sel.Selectivity, sel.MaxAbsError, sel.Partial)

	h, err := q.Healthz()
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	fmt.Printf("health: %s (go %s, rev %s)\n", h.Status, h.Build["go"], h.Build["vcs_revision"])
}
