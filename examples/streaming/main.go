// Streaming: a latency-monitoring pipeline that observes one measurement
// at a time, keeps a running OPAQ summary (push-based StreamBuilder),
// reports p50/p95/p99 with deterministic bounds on demand, and
// checkpoints its state to disk so a restart loses nothing — the paper's
// "keep the sorted samples" incremental story end to end.
//
// Run with: go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"opaq"
)

func main() {
	cfg := opaq.Config{RunLen: 10_000, SampleSize: 1000}
	sb, err := opaq.NewStreamBuilder[int64](cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate request latencies (µs): lognormal-ish base + occasional
	// slow tail.
	rng := rand.New(rand.NewSource(8))
	observe := func(n int) {
		for i := 0; i < n; i++ {
			lat := int64(2000 + rng.ExpFloat64()*1500)
			if rng.Intn(100) == 0 {
				lat += 50_000 // tail event
			}
			if err := sb.Add(lat); err != nil {
				log.Fatal(err)
			}
		}
	}

	report := func(label string) *opaq.Summary[int64] {
		sum, err := sb.Summary()
		if err != nil {
			log.Fatal(err)
		}
		p50, _ := sum.Bounds(0.50)
		p95, _ := sum.Bounds(0.95)
		p99, _ := sum.Bounds(0.99)
		fmt.Printf("%-18s n=%-8d p50∈[%d,%d]  p95∈[%d,%d]  p99∈[%d,%d]  (±%d ranks each)\n",
			label, sum.N(), p50.Lower, p50.Upper, p95.Lower, p95.Upper, p99.Lower, p99.Upper,
			sum.ErrorBound())
		return sum
	}

	observe(250_000)
	sum := report("after 250k reqs")

	// Checkpoint: persist the summary, "crash", restore, keep ingesting.
	var checkpoint bytes.Buffer
	if err := opaq.SaveSummaryInt64(&checkpoint, sum); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d bytes of summary state\n", checkpoint.Len())

	restored, err := opaq.LoadSummaryInt64(&checkpoint)
	if err != nil {
		log.Fatal(err)
	}

	// A fresh builder for post-restart traffic; merged with the restored
	// summary at query time.
	sb, err = opaq.NewStreamBuilder[int64](cfg)
	if err != nil {
		log.Fatal(err)
	}
	observe(250_000)
	recent, err := sb.Summary()
	if err != nil {
		log.Fatal(err)
	}
	combined, err := opaq.Merge(restored, recent)
	if err != nil {
		log.Fatal(err)
	}
	p99, _ := combined.Bounds(0.99)
	fmt.Printf("%-18s n=%-8d p99∈[%d,%d] — restart lost nothing\n",
		"after restore+250k", combined.N(), p99.Lower, p99.Upper)

	// The tail events are visible: p99 sits far above p50.
	p50, _ := combined.Bounds(0.50)
	if p99.Lower < p50.Upper {
		log.Fatal("expected a heavy tail in the synthetic latencies")
	}
	fmt.Println("deterministic bounds survived streaming, checkpointing and merging")
}
