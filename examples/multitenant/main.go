// Multitenant: the epoch lifecycle and the tenant registry in one
// process. Two tenants — a lifetime (keep-all) engine and a sliding
// last-K-epochs engine — ingest the same drifting stream behind one
// HTTP mux; the windowed tenant's median tracks the drift while the
// lifetime tenant remembers everything. Both checkpoint to separate
// files in one directory, and a second registry boots warm from it.
//
// Run with: go run ./examples/multitenant
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"opaq"
)

func main() {
	dir, err := os.MkdirTemp("", "opaq-tenants")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reg, err := opaq.NewEngineRegistry(opaq.EngineRegistryOptions[int64]{
		Defaults: opaq.EngineOptions{
			Config:  opaq.Config{RunLen: 1 << 10, SampleSize: 1 << 7},
			Stripes: 2,
			Buckets: 20,
		},
		CheckpointDir: dir,
		Codec:         opaq.Int64Codec{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// "lifetime" keeps every epoch; "recent" seals an epoch every 4096
	// elements and retains only the last 4 — a sliding window of roughly
	// the newest 16k elements.
	if _, err := reg.Create("lifetime", nil); err != nil {
		log.Fatal(err)
	}
	windowed := opaq.EngineOptions{
		Config:    opaq.Config{RunLen: 1 << 10, SampleSize: 1 << 7},
		Stripes:   2,
		Buckets:   20,
		Epoch:     opaq.EngineEpochPolicy{MaxElems: 4096},
		Retention: opaq.EngineRetention{Kind: opaq.RetainLastK, K: 4},
	}
	if _, err := reg.Create("recent", &windowed); err != nil {
		log.Fatal(err)
	}

	srv := httptest.NewServer(opaq.NewEngineRegistryHandler(reg, opaq.ParseInt64Key, opaq.EngineHandlerOptions{}))
	defer srv.Close()
	fmt.Printf("multi-tenant quantile service on %s (tenants: %v)\n\n", srv.URL, reg.Names())

	// A drifting stream: each phase's keys center an order of magnitude
	// higher than the last. Both tenants see identical data over HTTP.
	rng := rand.New(rand.NewSource(1))
	for phase := 0; phase < 4; phase++ {
		center := int64(1_000) << (4 * phase)
		for batch := 0; batch < 8; batch++ {
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprint(center + rng.Int63n(center))
			}
			body := `{"keys":[` + strings.Join(keys, ",") + `]}`
			for _, tenant := range []string{"lifetime", "recent"} {
				resp, err := http.Post(srv.URL+"/t/"+tenant+"/ingest", "application/json", strings.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
			}
		}
		fmt.Printf("phase %d (keys ≈ %d):\n", phase, center)
		for _, tenant := range []string{"lifetime", "recent"} {
			var q struct {
				Lower string `json:"lower"`
				Upper string `json:"upper"`
			}
			getJSON(srv.URL+"/t/"+tenant+"/quantile?phi=0.5", &q)
			var st struct {
				Epochs    int   `json:"epochs"`
				Evicted   int64 `json:"evicted_epochs"`
				RetainedN int64 `json:"retained_n"`
			}
			getJSON(srv.URL+"/t/"+tenant+"/stats", &st)
			fmt.Printf("  %-8s median in [%s, %s]  (ring %d epochs, %d evicted, %d retained elements)\n",
				tenant, q.Lower, q.Upper, st.Epochs, st.Evicted, st.RetainedN)
		}
	}
	fmt.Println("\nthe windowed tenant's median follows the drift; the lifetime tenant averages over all phases")

	// Checkpoint every tenant to its own file and boot a second registry
	// warm from the directory.
	if err := reg.CheckpointAll(); err != nil {
		log.Fatal(err)
	}
	reborn, err := opaq.NewEngineRegistry(opaq.EngineRegistryOptions[int64]{
		Defaults: opaq.EngineOptions{
			Config:  opaq.Config{RunLen: 1 << 10, SampleSize: 1 << 7},
			Stripes: 2,
			Buckets: 20,
		},
		CheckpointDir: dir,
		Codec:         opaq.Int64Codec{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reborn.Close()
	fmt.Printf("\nrebooted registry restored tenants %v:\n", reborn.Names())
	for _, name := range reborn.Names() {
		eng, err := reborn.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		b, err := eng.Quantile(0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s warm with n=%d, median in [%d, %d]\n", name, eng.N(), b.Lower, b.Upper)
	}
}

// getJSON decodes one GET response into out.
func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
