// Quickstart: estimate quantiles of a dataset in one pass with
// deterministic error bounds, then refine one to an exact value with a
// second pass.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"opaq"
)

func main() {
	// Pretend this is 2M transaction amounts sitting on disk. RunLen (m)
	// is how many fit in memory at once; SampleSize (s) buys accuracy:
	// at most n/s elements can separate a true quantile from either bound.
	const n = 2_000_000
	rng := rand.New(rand.NewSource(42))
	amounts := make([]int64, n)
	for i := range amounts {
		amounts[i] = rng.Int63n(1_000_000)
	}

	// Workers: 0 runs the sample phase as a concurrent pipeline across all
	// cores (runs are prefetched while earlier ones are sampled); the
	// summary is bit-identical to a sequential build.
	cfg := opaq.Config{RunLen: 250_000, SampleSize: 1000, Workers: 0}
	sum, err := opaq.BuildFromSlice(amounts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one pass over %d elements: %d runs, %d samples kept, error ≤ %d elements per bound\n\n",
		sum.N(), sum.Runs(), sum.SampleCount(), sum.ErrorBound())

	// Dectiles, each O(1) from the same summary.
	bounds, err := sum.Quantiles(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phi    lower     upper     (true value is guaranteed inside)")
	for _, b := range bounds {
		fmt.Printf("%.1f  %8d  %8d\n", b.Phi, b.Lower, b.Upper)
	}

	// Bound the rank of an arbitrary key without touching the data again.
	lo, hi := sum.RankBounds(500_000)
	fmt.Printf("\nrank(500000) ∈ [%d, %d]  (width %d ≈ n/s + slack)\n", lo, hi, hi-lo)

	// One extra pass turns an enclosure into the exact value.
	ds := opaq.NewMemoryDataset(amounts, 8)
	median, err := opaq.ExactQuantile(ds, sum, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact median (second pass): %d\n", median)
}
