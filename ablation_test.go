// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - multi-selection vs full sort in the sample phase (the paper's
//     O(m log s) vs the naive O(m log m));
//   - bitonic vs sample merge for the global merge (Figure 3's axis);
//   - the (m, s) split under a fixed memory budget r·s + m ≤ M;
//   - OPAQ + one refinement pass vs multi-pass narrowing for exact
//     quantiles.
package opaq_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"opaq"
	"opaq/internal/datagen"
	"opaq/internal/parallel"
	"opaq/internal/selection"
	"opaq/internal/simnet"
)

// BenchmarkAblationSampling compares the paper's multi-selection against
// sorting each run outright. The gap is the log(m)/log(s) factor of
// Table 2 — the reason the sample phase multi-selects.
func BenchmarkAblationSampling(b *testing.B) {
	const m, s = 1 << 17, 1 << 10
	run := datagen.Generate(datagen.NewUniform(3, 1<<62), m)
	ranks, err := selection.RegularRanks(m, s)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("multiselect", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.SetBytes(m * 8)
		for i := 0; i < b.N; i++ {
			cp := append([]int64(nil), run...)
			if _, err := selection.MultiSelect(cp, ranks, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		b.SetBytes(m * 8)
		for i := 0; i < b.N; i++ {
			cp := append([]int64(nil), run...)
			sort.Slice(cp, func(x, y int) bool { return cp[x] < cp[y] })
			out := make([]int64, 0, s)
			for _, r := range ranks {
				out = append(out, cp[r])
			}
			_ = out
		}
	})
}

// BenchmarkAblationGlobalMerge sweeps both global merge algorithms over
// processor counts at a fixed per-processor list size, reporting simulated
// milliseconds (the wall time of the simulation itself is incidental).
func BenchmarkAblationGlobalMerge(b *testing.B) {
	const listLen = 8192
	for _, p := range []int{2, 4, 8, 16} {
		for _, algo := range []parallel.MergeAlgo{parallel.BitonicMerge, parallel.SampleMerge} {
			b.Run(fmt.Sprintf("%v/p=%d", algo, p), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					d, err := parallel.GlobalMergeTime(listLen, p, algo, simnet.DefaultCostModel(), 7)
					if err != nil {
						b.Fatal(err)
					}
					sim = float64(d.Microseconds()) / 1000
				}
				b.ReportMetric(sim, "simulated-ms")
			})
		}
	}
}

// BenchmarkAblationMemorySplit holds the memory budget M = r·s + m fixed
// and sweeps the split between run length m and sample size s. Larger s
// buys a tighter deterministic bound (reported as bound-elems) at the cost
// of more selection work per run.
func BenchmarkAblationMemorySplit(b *testing.B) {
	const n = 1 << 20
	xs := datagen.Generate(datagen.NewUniform(9, 1<<62), n)
	// Splits chosen so r·s + m stays ≈ 96k elements.
	splits := []opaq.Config{
		{RunLen: 1 << 16, SampleSize: 1 << 9},  // r=16, rs=8k,  m=64k
		{RunLen: 1 << 15, SampleSize: 1 << 10}, // r=32, rs=32k, m=32k
		{RunLen: 1 << 14, SampleSize: 1 << 11}, // r=64, rs=128k… larger rs, smaller m
	}
	for _, cfg := range splits {
		name := fmt.Sprintf("m=%d/s=%d", cfg.RunLen, cfg.SampleSize)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(n * 8)
			var bound int64
			for i := 0; i < b.N; i++ {
				sum, err := opaq.BuildFromSlice(xs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bound = sum.ErrorBound()
			}
			b.ReportMetric(float64(bound), "bound-elems")
		})
	}
}

// BenchmarkAblationExact compares the two ways to get an exact quantile
// out of this repository: OPAQ summary + one refinement pass (2 passes
// total) vs multi-pass narrowing under the same memory budget.
func BenchmarkAblationExact(b *testing.B) {
	const n = 1 << 20
	xs := datagen.Generate(datagen.NewUniform(11, 1<<62), n)
	ds := opaq.NewMemoryDataset(xs, 8)
	const budget = 1 << 14
	b.Run("opaq-2pass", func(b *testing.B) {
		b.SetBytes(n * 8 * 2)
		for i := 0; i < b.N; i++ {
			sum, err := opaq.BuildFromSlice(xs, opaq.Config{RunLen: 1 << 16, SampleSize: 1 << 10})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := opaq.ExactQuantile(ds, sum, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multipass", func(b *testing.B) {
		var passes int
		for i := 0; i < b.N; i++ {
			var err error
			if _, passes, err = opaq.ExactQuantileMultipass(ds, 0.5, budget, 3); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(passes), "passes")
	})
}

// BenchmarkAblationSelection compares the randomized selection (with
// deterministic fallback) against pure median-of-medians on one rank —
// the [FR75] vs [ea72] choice inside the sample phase.
func BenchmarkAblationSelection(b *testing.B) {
	const m = 1 << 18
	run := datagen.Generate(datagen.NewUniform(5, 1<<62), m)
	b.Run("randomized", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		b.SetBytes(m * 8)
		for i := 0; i < b.N; i++ {
			cp := append([]int64(nil), run...)
			if _, err := selection.Select(cp, m/2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deterministic", func(b *testing.B) {
		b.SetBytes(m * 8)
		for i := 0; i < b.N; i++ {
			cp := append([]int64(nil), run...)
			if _, err := selection.SelectDeterministic(cp, m/2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
